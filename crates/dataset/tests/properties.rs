//! Property-based tests for the twin generator and dataset I/O.

use dnasim_testkit::prelude::*;

use dnasim_core::rng::seeded;
use dnasim_dataset::{
    generate_references, read_dataset, write_dataset, GroundTruthChannel, NanoporeTwinConfig,
    ReferenceStyle, TwinProfile,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn twin_respects_configuration(
        clusters in 1usize..40,
        strand_len in 20usize..120,
        seed in any::<u64>(),
    ) {
        let config = NanoporeTwinConfig {
            cluster_count: clusters,
            strand_len,
            erasure_count: clusters.min(2),
            seed,
            ..NanoporeTwinConfig::default()
        };
        let ds = config.generate();
        prop_assert_eq!(ds.len(), clusters);
        prop_assert_eq!(ds.strand_len(), Some(strand_len));
        prop_assert!(ds.erasure_count() >= clusters.min(2));
        let (_, hi) = ds.coverage_range().unwrap();
        prop_assert!(hi <= config.max_coverage);
        // Determinism.
        prop_assert_eq!(config.generate(), ds);
    }

    #[test]
    fn channel_reads_have_plausible_lengths(
        strand_len in 10usize..150,
        seed in any::<u64>(),
        rate in 0.0f64..0.2,
    ) {
        use dnasim_channel::ErrorModel;
        use dnasim_core::Strand;
        for profile in [TwinProfile::nanopore(), TwinProfile::high_error_variant()] {
            let channel = GroundTruthChannel::with_profile(rate, strand_len, profile);
            let mut rng = seeded(seed);
            let reference = Strand::random(strand_len, &mut rng);
            let read = channel.corrupt(&reference, &mut rng);
            prop_assert!(read.len() <= strand_len * 2 + 2);
        }
    }

    #[test]
    fn io_round_trips_any_twin(clusters in 1usize..20, seed in any::<u64>()) {
        let config = NanoporeTwinConfig {
            cluster_count: clusters,
            erasure_count: 1.min(clusters),
            seed,
            ..NanoporeTwinConfig::small()
        };
        let ds = config.generate();
        let mut buffer = Vec::new();
        write_dataset(&ds, &mut buffer).unwrap();
        prop_assert_eq!(read_dataset(buffer.as_slice()).unwrap(), ds);
    }

    #[test]
    fn reference_generators_respect_style(
        count in 0usize..10,
        len in 2usize..80,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded(seed);
        let uniform = generate_references(count, len, ReferenceStyle::Uniform, &mut rng);
        prop_assert_eq!(uniform.len(), count);
        prop_assert!(uniform.iter().all(|r| r.len() == len));

        let balanced =
            generate_references(count, len, ReferenceStyle::GcBalanced, &mut rng);
        for r in &balanced {
            prop_assert!((r.gc_ratio() - 0.5).abs() <= 0.5 / len as f64 + 1e-9);
        }

        for cap in [1usize, 2, 4] {
            let limited = generate_references(
                count,
                len,
                ReferenceStyle::HomopolymerLimited(cap),
                &mut rng,
            );
            prop_assert!(limited.iter().all(|r| r.max_homopolymer() <= cap));
        }
    }
}
