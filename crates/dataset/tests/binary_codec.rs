//! Cross-format differential properties: the binary codec must carry
//! exactly the clusters the text format carries — for every cluster shape
//! the simulator can produce (erasures, empty reads, CRLF-era corpora) —
//! and corrupt binary input must always surface as a typed error.

use dnasim_core::rng::seeded;
use dnasim_core::{Cluster, Dataset, Strand};
use dnasim_dataset::{
    read_dataset, read_dataset_auto, write_dataset, write_dataset_format, BinaryDatasetReader,
    BinaryDatasetWriter, Format, ReadDatasetError,
};
use dnasim_testkit::prelude::*;

/// Builds a dataset exercising the representational extremes: erasure
/// clusters, empty reads, and max-length strands (mirrors `io_edges.rs`).
fn adversarial_dataset(clusters: usize, max_len: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::new();
    for i in 0..clusters {
        let reference = Strand::random(max_len, &mut rng);
        match i % 3 {
            0 => ds.push(Cluster::erasure(reference)),
            1 => ds.push(Cluster::new(
                reference.clone(),
                vec![Strand::new(), reference.clone(), Strand::new()],
            )),
            _ => {
                let reads = (0..3)
                    .map(|_| Strand::random(max_len, &mut rng))
                    .collect();
                ds.push(Cluster::new(reference, reads));
            }
        }
    }
    ds
}

fn to_binary(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    write_dataset_format(ds, &mut buf, Format::Binary).unwrap();
    buf
}

#[test]
fn empty_reads_and_sentinels_survive_text_binary_text() {
    // The `-` sentinel corner: empty reads are coverage, not erasures,
    // and must stay that way through the binary codec.
    let text = ">ACGT\n-\nAC\n-\n\n>TTTT\n";
    let ds = read_dataset(text.as_bytes()).unwrap();
    let back = read_dataset_auto(to_binary(&ds).as_slice()).unwrap();
    assert_eq!(back, ds);
    assert_eq!(back.clusters()[0].coverage(), 3);
    assert_eq!(back.erasure_count(), 1);
    let mut round = Vec::new();
    write_dataset(&back, &mut round).unwrap();
    assert_eq!(String::from_utf8(round).unwrap(), ">ACGT\n-\nAC\n-\n\n>TTTT\n");
}

#[test]
fn crlf_corpus_parses_to_the_same_binary_bytes() {
    let ds = adversarial_dataset(7, 40, 99);
    let mut text = Vec::new();
    write_dataset(&ds, &mut text).unwrap();
    let crlf = String::from_utf8(text).unwrap().replace('\n', "\r\n");
    let from_crlf = read_dataset(crlf.as_bytes()).unwrap();
    // CRLF tolerance composed with the binary codec: identical frames.
    assert_eq!(to_binary(&from_crlf), to_binary(&ds));
}

#[test]
fn zero_cluster_binary_file_round_trips() {
    let ds = Dataset::new();
    let bytes = to_binary(&ds);
    assert!(!bytes.is_empty(), "empty binary file still has a header");
    assert!(read_dataset_auto(bytes.as_slice()).unwrap().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_to_binary_to_text_is_byte_identical(
        clusters in 1usize..12,
        max_len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let mut text_first = Vec::new();
        write_dataset(&ds, &mut text_first).expect("write text");
        // text → dataset → binary → dataset → text
        let parsed = read_dataset(text_first.as_slice()).expect("read text");
        let binary = to_binary(&parsed);
        let back = read_dataset_auto(binary.as_slice()).expect("read binary");
        prop_assert_eq!(&back, &ds);
        let mut text_second = Vec::new();
        write_dataset(&back, &mut text_second).expect("rewrite text");
        prop_assert_eq!(text_first, text_second);
    }

    #[test]
    fn binary_write_is_a_byte_identical_fixed_point(
        clusters in 1usize..10,
        max_len in 1usize..120,
        seed in any::<u64>(),
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let first = to_binary(&ds);
        let back = read_dataset_auto(first.as_slice()).expect("read");
        prop_assert_eq!(to_binary(&back), first);
    }

    #[test]
    fn streaming_binary_reader_matches_whole_file_parse(
        clusters in 1usize..10,
        max_len in 1usize..80,
        seed in any::<u64>(),
        batch in 1usize..5,
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let bytes = to_binary(&ds);
        let mut reader = BinaryDatasetReader::new(bytes.as_slice());
        let mut streamed = Dataset::new();
        loop {
            match dnasim_core::ClusterSource::next_batch(&mut reader, batch).expect("batch") {
                Some(b) => streamed.extend(b.clusters().iter().cloned()),
                None => break,
            }
        }
        prop_assert_eq!(streamed, ds);
    }

    #[test]
    fn truncated_binary_never_panics_and_never_misreads(
        clusters in 1usize..6,
        max_len in 1usize..60,
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let bytes = to_binary(&ds);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match read_dataset_auto(&bytes[..cut]) {
            // A cut on a frame boundary yields a strict prefix of the
            // dataset — every decoded cluster must be the real one.
            Ok(prefix) => {
                prop_assert!(prefix.len() <= ds.len());
                prop_assert_eq!(
                    prefix.clusters(),
                    &ds.clusters()[..prefix.len()]
                );
            }
            Err(ReadDatasetError::Frame { .. } | ReadDatasetError::Io { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected {other}"))),
        }
    }

    #[test]
    fn single_byte_corruption_is_detected_or_harmless(
        clusters in 1usize..6,
        max_len in 1usize..60,
        seed in any::<u64>(),
        victim in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let mut bytes = to_binary(&ds);
        // Corrupt one byte past the header (header corruption is covered
        // by the unit suite; payload/frame corruption is the sharp edge).
        let span = bytes.len() - 8;
        let at = 8 + (victim as usize) % span;
        bytes[at] ^= flip;
        match read_dataset_auto(bytes.as_slice()) {
            // The only acceptable success: the flipped bits were in a
            // strand's padding area and the checksum caught… nothing,
            // which cannot happen — padding is covered by the checksum.
            // So any Ok must decode to something ≠ ds only if the write
            // path differs; require failure or exact equality.
            Ok(back) => prop_assert_eq!(back, ds),
            Err(ReadDatasetError::Frame { .. } | ReadDatasetError::Io { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected {other}"))),
        }
    }
}

#[test]
fn binary_writer_via_sink_matches_whole_file_write() {
    let ds = adversarial_dataset(9, 50, 4242);
    let whole = to_binary(&ds);
    for batch_size in [1, 2, 4, usize::MAX] {
        let mut buf = Vec::new();
        let mut sink = BinaryDatasetWriter::new(&mut buf);
        dnasim_core::pump(&mut ds.stream(), &mut sink, batch_size, Ok).unwrap();
        assert_eq!(buf, whole, "batch_size={batch_size}");
    }
}
