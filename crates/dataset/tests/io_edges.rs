//! Regression tests for cluster-file parsing edge cases surfaced by fault
//! injection: CRLF line endings, trailing blank lines, a final cluster with
//! no blank line after it, and zero-length reads must all parse identically
//! to the canonical form.

use dnasim_core::rng::seeded;
use dnasim_core::{Cluster, Dataset, Strand};
use dnasim_dataset::{read_dataset, write_dataset, DatasetReader, ReadDatasetError};
use dnasim_testkit::prelude::*;

const CANONICAL: &str = ">ACGT\nACG\nACGT\n\n>TTTT\nTTT\n";

fn parse(text: &str) -> Dataset {
    read_dataset(text.as_bytes()).expect("parse failed")
}

#[test]
fn crlf_parses_identically_to_lf() {
    let crlf = CANONICAL.replace('\n', "\r\n");
    assert_eq!(parse(&crlf), parse(CANONICAL));
}

#[test]
fn mixed_line_endings_parse_identically() {
    let mixed = ">ACGT\r\nACG\nACGT\r\n\n>TTTT\r\nTTT\n";
    assert_eq!(parse(mixed), parse(CANONICAL));
}

#[test]
fn trailing_blank_lines_parse_identically() {
    for tail in ["\n", "\n\n\n", "\r\n\r\n", "\n \n\t\n"] {
        let padded = format!("{CANONICAL}{tail}");
        assert_eq!(parse(&padded), parse(CANONICAL), "tail {tail:?}");
    }
}

#[test]
fn missing_final_newline_parses_identically() {
    let trimmed = CANONICAL.trim_end();
    assert_eq!(parse(trimmed), parse(CANONICAL));
}

#[test]
fn final_cluster_without_blank_separator_parses_identically() {
    // The canonical text has no trailing blank line after TTTT's cluster
    // either — this guards the combination with CRLF.
    let crlf_no_final = CANONICAL.replace('\n', "\r\n");
    let crlf_no_final = crlf_no_final.trim_end();
    assert_eq!(parse(crlf_no_final), parse(CANONICAL));
}

#[test]
fn empty_read_round_trips_via_sentinel() {
    let reference: Strand = "ACGT".parse().unwrap();
    let mut ds = Dataset::new();
    ds.push(Cluster::new(
        reference.clone(),
        vec![Strand::new(), "AC".parse().unwrap(), Strand::new()],
    ));
    let mut buf = Vec::new();
    write_dataset(&ds, &mut buf).unwrap();
    let text = String::from_utf8(buf.clone()).unwrap();
    assert_eq!(text, ">ACGT\n-\nAC\n-\n");
    let back = read_dataset(buf.as_slice()).unwrap();
    assert_eq!(back, ds);
    // An empty read is coverage, not an erasure.
    assert_eq!(back.clusters()[0].coverage(), 3);
    assert_eq!(back.erasure_count(), 0);
}

#[test]
fn empty_read_distinct_from_erasure() {
    let ds = parse(">ACGT\n-\n\n>TTTT\n");
    assert_eq!(ds.len(), 2);
    assert_eq!(ds.clusters()[0].coverage(), 1);
    assert!(ds.clusters()[0].reads()[0].is_empty());
    assert!(ds.clusters()[1].is_erasure());
}

/// A reader that yields `prefix` then fails every subsequent read — the
/// shape of a dataset truncated by a mid-stream I/O fault.
struct FailingReader<'a> {
    prefix: &'a [u8],
    served: usize,
}

impl std::io::Read for FailingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = &self.prefix[self.served..];
        if remaining.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected fault",
            ));
        }
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.served += n;
        Ok(n)
    }
}

#[test]
fn every_reader_error_carries_the_offending_line() {
    // Parse failure: bad base on line 5.
    let err = read_dataset(">ACGT\nACG\n\n>TTTT\nTQT\n".as_bytes()).unwrap_err();
    assert_eq!(err.line(), 5);
    assert_eq!(err.offset(), 17, "line 5 starts at byte 17");
    assert!(matches!(err, ReadDatasetError::Parse { line: 5, .. }));
    assert!(err.to_string().contains("line 5"), "{err}");

    // Contiguity failure: a read with no reference, on line 3. The line
    // starts at byte 7 (">ACGT\n" is 6 bytes, the blank line 1 more).
    let err = read_dataset(">ACGT\n\nACG\n".as_bytes()).unwrap_err();
    assert_eq!(err.line(), 3);
    assert_eq!(err.offset(), 7);
    assert!(matches!(
        err,
        ReadDatasetError::ReadBeforeReference { line: 3, offset: 7 }
    ));

    // I/O failure after two complete lines: surfaces at line 3, with the
    // byte offset of everything successfully consumed (10 bytes).
    let source = FailingReader {
        prefix: b">ACGT\nACG\n",
        served: 0,
    };
    let err = read_dataset(std::io::BufReader::new(source)).unwrap_err();
    assert_eq!(err.line(), 3);
    assert_eq!(err.offset(), 10);
    match &err {
        ReadDatasetError::Io { line, source, .. } => {
            assert_eq!(*line, 3);
            assert_eq!(source.kind(), std::io::ErrorKind::BrokenPipe);
        }
        other => panic!("expected Io, got {other}"),
    }
    assert!(err.to_string().contains("line 3"), "{err}");

    // The line number also survives conversion into the generic error.
    let source = FailingReader {
        prefix: b">ACGT\nACG\n",
        served: 0,
    };
    let err: dnasim_core::DnasimError = read_dataset(std::io::BufReader::new(source))
        .unwrap_err()
        .into();
    assert!(err.to_string().contains("line 3"), "{err}");
}

#[test]
fn reader_error_line_numbers_are_stable_across_batching() {
    // The same corrupt file reports the same line regardless of whether
    // it is consumed cluster-at-a-time or through the batch interface.
    let text = ">ACGT\nACG\n\n>TTTT\nTTT\n\n>GGGG\nGXG\n";
    let direct = read_dataset(text.as_bytes()).unwrap_err().line();
    let mut reader = DatasetReader::new(text.as_bytes());
    let mut batch_err = None;
    loop {
        match dnasim_core::ClusterSource::next_batch(&mut reader, 2) {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(e) => {
                batch_err = Some(e);
                break;
            }
        }
    }
    let batch_err = batch_err.expect("corrupt file must error");
    assert_eq!(direct, 8);
    assert!(batch_err.to_string().contains("line 8"), "{batch_err}");
}

/// Builds a dataset exercising the representational extremes: erasure
/// clusters, empty reads, and max-length strands.
fn adversarial_dataset(clusters: usize, max_len: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::new();
    for i in 0..clusters {
        let reference = Strand::random(max_len, &mut rng);
        match i % 3 {
            0 => ds.push(Cluster::erasure(reference)),
            1 => ds.push(Cluster::new(
                reference.clone(),
                vec![Strand::new(), reference.clone(), Strand::new()],
            )),
            _ => {
                let reads = (0..3)
                    .map(|_| Strand::random(max_len, &mut rng))
                    .collect();
                ds.push(Cluster::new(reference, reads));
            }
        }
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_read_round_trips_byte_identically(
        clusters in 1usize..12,
        max_len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let mut first = Vec::new();
        write_dataset(&ds, &mut first).expect("write");
        let back = read_dataset(first.as_slice()).expect("read");
        prop_assert_eq!(&back, &ds);
        // Byte-identical fixed point: writing the re-read dataset
        // reproduces the original bytes exactly.
        let mut second = Vec::new();
        write_dataset(&back, &mut second).expect("rewrite");
        prop_assert_eq!(first, second);
    }

    #[test]
    fn crlf_and_padding_never_change_the_parse(
        clusters in 1usize..8,
        max_len in 1usize..60,
        seed in any::<u64>(),
    ) {
        let ds = adversarial_dataset(clusters, max_len, seed);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("ascii");
        let crlf = text.replace('\n', "\r\n");
        let padded = format!("{}\n\n\n", text.trim_end());
        prop_assert_eq!(read_dataset(crlf.as_bytes()).expect("crlf"), ds.clone());
        prop_assert_eq!(read_dataset(padded.as_bytes()).expect("padded"), ds);
    }
}
