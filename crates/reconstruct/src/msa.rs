//! Multiple-sequence-alignment (star-MSA) reconstruction.
//!
//! The classic trace-reconstruction family the paper's §1.1.2 cites (Yazdi
//! et al.): pick a *centre* read, align every other read against it,
//! project all reads into the centre's coordinate system, and take
//! column-wise votes including insertion columns. Unlike the scanning
//! algorithms, MSA is direction-symmetric — included both as a stronger
//! baseline and as a shape contrast for the profile figures.

use std::collections::BTreeMap;

use dnasim_core::rng::seeded;
use dnasim_core::{Base, EditOp, PackedStrand, Strand};
use dnasim_metrics::bank::{bank_distances_with, BankScratch, PatternBank, MAX_LANES};
use dnasim_metrics::myers;
use dnasim_profile::{edit_script_with, EditScratch, TieBreak};

use crate::algorithms::TraceReconstructor;
use crate::consensus::{positional_majority, VoteTally};

/// Star-MSA reconstruction: centre-read alignment plus column voting.
///
/// # Examples
///
/// ```
/// use dnasim_core::Strand;
/// use dnasim_reconstruct::{MsaReconstructor, TraceReconstructor};
///
/// let reference: Strand = "ACGTACGTACGTACGTACGT".parse()?;
/// let reads = vec![
///     reference.clone(),
///     "ACGTACTACGTACGTACGT".parse()?, // deletion
///     "ACGTACGGTACGTACGTACGT".parse()?, // insertion
/// ];
/// let msa = MsaReconstructor::default();
/// assert_eq!(msa.reconstruct(&reads, 20), reference);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsaReconstructor;

impl MsaReconstructor {
    /// Chooses the centre read: the one minimising total edit distance to
    /// the other reads (the star-MSA medoid).
    fn centre_index(reads: &[Strand]) -> usize {
        if reads.len() <= 2 {
            return 0;
        }
        // Pack every read once and fill the half-matrix row by row:
        // distance is symmetric, so each unordered pair is computed a
        // single time and credited to both rows. Row i's partners
        // (j > i) are grouped by word count and batched through the
        // multi-pattern bank kernel, so one pass over read i advances up
        // to MAX_LANES partners at once; leftover singletons and empty
        // reads take the single-pattern kernel. Both kernels are exact,
        // so the medoid matches the sequential scan.
        let packed: Vec<PackedStrand> = reads.iter().map(PackedStrand::from).collect();
        let mut scratch = myers::MyersScratch::new();
        let mut bank_scratch = BankScratch::new();
        let mut dists: Vec<usize> = Vec::new();
        let mut totals = vec![0usize; reads.len()];
        for i in 0..packed.len() {
            let mut by_words: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (j, p) in packed.iter().enumerate().skip(i + 1) {
                by_words.entry(p.words()).or_default().push(j);
            }
            for (words, partners) in by_words {
                if words == 0 {
                    // Empty partner: the distance is read i's length.
                    for &j in &partners {
                        let d = myers::distance_with(&mut scratch, &packed[i], &packed[j]);
                        totals[i] += d;
                        totals[j] += d;
                    }
                    continue;
                }
                for chunk in partners.chunks(MAX_LANES) {
                    let lanes: Vec<&PackedStrand> = chunk.iter().map(|&j| &packed[j]).collect();
                    match PatternBank::new(&lanes) {
                        Some(bank) if chunk.len() > 1 => {
                            bank_distances_with(&mut bank_scratch, &bank, &packed[i], &mut dists);
                            for (lane, &j) in chunk.iter().enumerate() {
                                let d = dists.get(lane).copied().unwrap_or(0);
                                totals[i] += d;
                                totals[j] += d;
                            }
                        }
                        _ => {
                            for &j in chunk {
                                let d =
                                    myers::distance_with(&mut scratch, &packed[i], &packed[j]);
                                totals[i] += d;
                                totals[j] += d;
                            }
                        }
                    }
                }
            }
        }
        // First minimum wins, matching the previous sequential scan.
        let mut best = (0usize, usize::MAX);
        for (i, &total) in totals.iter().enumerate() {
            if total < best.1 {
                best = (i, total);
            }
        }
        best.0
    }
}

impl TraceReconstructor for MsaReconstructor {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        if reads.is_empty() {
            return positional_majority(reads, strand_len);
        }
        let centre_idx = MsaReconstructor::centre_index(reads);
        let centre = &reads[centre_idx];
        let centre_len = centre.len();

        // Column votes in centre coordinates: matches/substitutions vote at
        // the centre position, deletions vote "absent", insertions vote in
        // the gap before a centre position.
        let mut column_votes: Vec<VoteTally> = vec![VoteTally::new(); centre_len];
        let mut absent_votes: Vec<usize> = vec![0; centre_len];
        let mut gap_votes: Vec<VoteTally> = vec![VoteTally::new(); centre_len + 1];
        let mut rng = seeded(0); // deterministic tie-break ignores the RNG
        let mut scratch = EditScratch::new();
        for (j, read) in reads.iter().enumerate() {
            if j == centre_idx {
                for (p, b) in centre.iter().enumerate() {
                    column_votes[p].vote(b);
                }
                continue;
            }
            let script =
                edit_script_with(&mut scratch, centre, read, TieBreak::PreferSubstitution, &mut rng);
            let mut p = 0usize;
            for &op in script.ops() {
                match op {
                    EditOp::Equal(b) => column_votes[p].vote(b),
                    EditOp::Subst { new, .. } => column_votes[p].vote(new),
                    EditOp::Delete(_) => absent_votes[p] += 1,
                    EditOp::Insert(b) => gap_votes[p].vote(b),
                }
                p += op.reference_advance();
            }
        }

        let half = reads.len() / 2;
        let mut out = Strand::with_capacity(strand_len);
        for p in 0..centre_len {
            if let Some(winner) = gap_votes[p].winner() {
                if gap_votes[p].count(winner) > half {
                    out.push(winner);
                }
            }
            if absent_votes[p] > column_votes[p].total() {
                continue; // most reads lack this centre base
            }
            out.push(column_votes[p].winner().unwrap_or(centre[p]));
        }
        if let Some(winner) = gap_votes[centre_len].winner() {
            if gap_votes[centre_len].count(winner) > half {
                out.push(winner);
            }
        }

        // Enforce the design length, padding from unaligned tail majority.
        out.truncate(strand_len);
        while out.len() < strand_len {
            let j = out.len();
            let mut tally = VoteTally::new();
            for read in reads {
                if let Some(b) = read.get(j) {
                    tally.vote(b);
                }
            }
            out.push(tally.winner().unwrap_or(Base::A));
        }
        out
    }

    fn name(&self) -> String {
        "msa".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded as seed_rng;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn clean_cluster_reconstructs_exactly() {
        let reference = s("ACGTACGTACGTACGTACGT");
        let reads = vec![reference.clone(); 4];
        assert_eq!(MsaReconstructor.reconstruct(&reads, 20), reference);
    }

    #[test]
    fn empty_cluster_yields_filler() {
        assert_eq!(MsaReconstructor.reconstruct(&[], 6).len(), 6);
    }

    #[test]
    fn single_read_is_returned_cropped() {
        let read = s("ACGTACGT");
        let out = MsaReconstructor.reconstruct(std::slice::from_ref(&read), 8);
        assert_eq!(out, read);
        assert_eq!(MsaReconstructor.reconstruct(&[read], 4).len(), 4);
    }

    #[test]
    fn centre_is_the_medoid() {
        // Two noisy copies and one outlier: the medoid is a noisy copy.
        let reads = vec![
            s("ACGTACGTACGTACGT"),
            s("ACGTACGTACGTACGA"),
            s("TTTTTTTTTTTTTTTT"),
        ];
        assert!(MsaReconstructor::centre_index(&reads) < 2);
    }

    #[test]
    fn corrects_mixed_errors() {
        let reference = s("ACGTACGTACGTACGTACGTACGTACGTAC");
        let reads = vec![
            reference.clone(),
            s("ACGTACTTACGTACGTACGTACGTACGTAC"),  // sub
            s("ACGTACGTACGTACGACGTACGTACGTAC"),   // del
            s("ACGTACGTACGGTACGTACGTACGTACGTAC"), // ins
            reference.clone(),
        ];
        assert_eq!(MsaReconstructor.reconstruct(&reads, 30), reference);
    }

    #[test]
    fn length_is_always_exact() {
        let reads = vec![s("ACG"), s("ACGTACGTACGTACG"), s("A")];
        for len in [2usize, 8, 20] {
            assert_eq!(MsaReconstructor.reconstruct(&reads, len).len(), len);
        }
    }

    #[test]
    fn accuracy_is_competitive_on_uniform_noise() {
        let model = NaiveModel::with_total_rate(0.059);
        let mut rng = seed_rng(7);
        let mut exact = 0usize;
        let trials = 60;
        for _ in 0..trials {
            let reference = Strand::random(110, &mut rng);
            let reads: Vec<Strand> = (0..6).map(|_| model.corrupt(&reference, &mut rng)).collect();
            if MsaReconstructor.reconstruct(&reads, 110) == reference {
                exact += 1;
            }
        }
        assert!(exact > trials / 2, "msa exact only {exact}/{trials}");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MsaReconstructor.name(), "msa");
    }

    #[test]
    fn banked_medoid_matches_sequential_half_matrix() {
        let model = NaiveModel::with_total_rate(0.08);
        let mut rng = seed_rng(19);
        for (count, len) in [(3usize, 40usize), (7, 110), (12, 110), (17, 150)] {
            let reference = Strand::random(len, &mut rng);
            let mut reads: Vec<Strand> =
                (0..count).map(|_| model.corrupt(&reference, &mut rng)).collect();
            // Mix in shape variety: an empty read and a short read.
            reads.push(Strand::new());
            reads.push(Strand::random(9, &mut rng));
            // Brute-force medoid with the single-pattern kernel only.
            let packed: Vec<PackedStrand> = reads.iter().map(PackedStrand::from).collect();
            let mut totals = vec![0usize; reads.len()];
            for i in 0..packed.len() {
                for j in (i + 1)..packed.len() {
                    let d = myers::distance(&packed[i], &packed[j]);
                    totals[i] += d;
                    totals[j] += d;
                }
            }
            let mut expected = (0usize, usize::MAX);
            for (i, &total) in totals.iter().enumerate() {
                if total < expected.1 {
                    expected = (i, total);
                }
            }
            assert_eq!(
                MsaReconstructor::centre_index(&reads),
                expected.0,
                "count={count} len={len}"
            );
        }
    }
}
