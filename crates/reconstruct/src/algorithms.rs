//! The trace-reconstruction algorithm suite.

use dnasim_core::rng::seeded;
use dnasim_core::{Base, EditOp, Strand};
use dnasim_profile::{edit_script_with, EditScratch, TieBreak};

use crate::consensus::{
    anchored_one_way_bma_filtered, one_way_bma_filtered, positional_majority,
    LookaheadFilterStats, VoteTally,
};

/// A trace-reconstruction algorithm: estimates the reference strand of
/// known design length from a cluster of noisy reads.
///
/// Implementations must return a strand of exactly `strand_len` bases and
/// be deterministic, so that experiment tables are reproducible.
pub trait TraceReconstructor: std::fmt::Debug {
    /// Reconstructs an estimate of the reference from `reads`.
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand;

    /// A short name for tables and reports.
    fn name(&self) -> String;
}

impl<T: TraceReconstructor + ?Sized> TraceReconstructor for &T {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        (**self).reconstruct(reads, strand_len)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: TraceReconstructor + ?Sized> TraceReconstructor for Box<T> {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        (**self).reconstruct(reads, strand_len)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Plain per-position majority voting with no alignment — the control
/// baseline every alignment-aware algorithm must beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityVote;

impl TraceReconstructor for MajorityVote {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        positional_majority(reads, strand_len)
    }

    fn name(&self) -> String {
        "majority".to_owned()
    }
}

/// BMA Look-Ahead with **two-way execution** (the variant the paper
/// evaluates): a forward pass reconstructs the first half of the strand, a
/// backward pass over reversed reads reconstructs the second half, and the
/// halves are concatenated.
///
/// Because each pass's alignment errors accumulate *away* from its anchor
/// end, the residual errors pile up at the strand middle — the symmetric
/// A-shaped Hamming profile of Figs. 3.4c/3.7.
///
/// # Examples
///
/// ```
/// use dnasim_core::Strand;
/// use dnasim_reconstruct::{BmaLookahead, TraceReconstructor};
///
/// let reference: Strand = "ACGTACGTAC".parse()?;
/// let reads = vec![reference.clone(), "ACGTACGAC".parse()?, reference.clone()];
/// let bma = BmaLookahead::default();
/// assert_eq!(bma.reconstruct(&reads, 10), reference);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmaLookahead {
    /// Look-ahead window used to classify mismatches (default 3).
    pub lookahead: usize,
}

impl Default for BmaLookahead {
    fn default() -> BmaLookahead {
        BmaLookahead { lookahead: 3 }
    }
}

impl TraceReconstructor for BmaLookahead {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        let mut stats = LookaheadFilterStats::default();
        let forward = one_way_bma_filtered(reads, strand_len, self.lookahead, &mut stats);
        let reversed: Vec<Strand> = reads.iter().map(Strand::reversed).collect();
        let backward = one_way_bma_filtered(&reversed, strand_len, self.lookahead, &mut stats);
        let head_len = strand_len.div_ceil(2);
        let mut out = forward.substrand(0..head_len);
        // backward[k] estimates reference position strand_len - 1 - k; the
        // second half of the output is backward[..strand_len - head_len]
        // reversed.
        let tail = backward.substrand(0..strand_len - head_len).reversed();
        out.extend(tail.iter());
        out
    }

    fn name(&self) -> String {
        "bma".to_owned()
    }
}

/// One-way BMA Look-Ahead (forward only) — exposed for ablating the effect
/// of two-way execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneWayBma {
    /// Look-ahead window (default 3).
    pub lookahead: usize,
}

impl Default for OneWayBma {
    fn default() -> OneWayBma {
        OneWayBma { lookahead: 3 }
    }
}

impl TraceReconstructor for OneWayBma {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        one_way_bma_filtered(reads, strand_len, self.lookahead, &mut LookaheadFilterStats::default())
    }

    fn name(&self) -> String {
        "bma-oneway".to_owned()
    }
}

/// Divider BMA: partitions the cluster by read length and takes the
/// column-wise majority of the reads whose length equals the design length
/// (falling back to unaligned majority over all reads when none do).
///
/// At Nanopore-scale error rates almost no read is *error-free* at length
/// `L` — equal-length reads usually contain cancelling indels — so the
/// unshifted column vote performs very poorly there (per-strand accuracies
/// of a few percent in Table 2.1), while being excellent on low-error data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DividerBma;

impl TraceReconstructor for DividerBma {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        let equal_length: Vec<Strand> = reads
            .iter()
            .filter(|r| r.len() == strand_len)
            .cloned()
            .collect();
        if equal_length.is_empty() {
            positional_majority(reads, strand_len)
        } else {
            positional_majority(&equal_length, strand_len)
        }
    }

    fn name(&self) -> String {
        "divbma".to_owned()
    }
}

/// Iterative reconstruction: a one-way scanning consensus refined by
/// repeated re-alignment rounds.
///
/// Pass 1 runs a forward-only look-ahead scan. Each refinement round
/// aligns every read against the current estimate (minimum edit script),
/// votes per estimate position on substitutions, deletions and insertions,
/// and applies the majority corrections; rounds repeat until a fixed point.
///
/// The initial scan is strictly left-to-right, so errors propagate
/// linearly toward the strand end (the asymmetric Hamming profile of
/// Fig. 3.4a), and an error burst at the strand *start* poisons the
/// alignment anchor for everything after it — which is why the algorithm
/// degrades so sharply under the terminal spatial skew of real Nanopore
/// data (§3.3.2) while excelling under uniform error.
///
/// # Examples
///
/// ```
/// use dnasim_core::Strand;
/// use dnasim_reconstruct::{Iterative, TraceReconstructor};
///
/// let reference: Strand = "ACGTACGTAC".parse()?;
/// let reads = vec![reference.clone(), "ACGTCGTAC".parse()?, "ACGTAACGTAC".parse()?];
/// let algo = Iterative::default();
/// assert_eq!(algo.reconstruct(&reads, 10), reference);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iterative {
    /// Look-ahead window for the initial scan (default 2).
    pub lookahead: usize,
    /// Maximum refinement rounds (default 3).
    pub max_rounds: usize,
}

impl Default for Iterative {
    fn default() -> Iterative {
        Iterative {
            lookahead: 2,
            max_rounds: 3,
        }
    }
}

impl Iterative {
    /// One alignment-and-vote refinement round.
    fn refine(&self, estimate: &Strand, reads: &[Strand], strand_len: usize) -> Strand {
        let est_len = estimate.len();
        let mut sub_votes: Vec<VoteTally> = vec![VoteTally::new(); est_len];
        let mut del_votes: Vec<usize> = vec![0; est_len];
        // ins_votes[p]: insertions observed before estimate position p
        // (p == est_len → at the very end).
        let mut ins_votes: Vec<VoteTally> = vec![VoteTally::new(); est_len + 1];
        // The deterministic tie-break never consults the RNG.
        let mut rng = seeded(0);
        let mut scratch = EditScratch::new();
        for read in reads {
            let script =
                edit_script_with(&mut scratch, estimate, read, TieBreak::PreferSubstitution, &mut rng);
            let mut p = 0usize;
            for &op in script.ops() {
                match op {
                    EditOp::Equal(b) => sub_votes[p].vote(b),
                    EditOp::Subst { new, .. } => sub_votes[p].vote(new),
                    EditOp::Delete(_) => del_votes[p] += 1,
                    EditOp::Insert(b) => ins_votes[p].vote(b),
                }
                p += op.reference_advance();
            }
        }
        let half = reads.len() / 2;
        let mut out = Strand::with_capacity(strand_len);
        for p in 0..est_len {
            if let Some(winner) = ins_votes[p].winner() {
                if ins_votes[p].count(winner) > half {
                    out.push(winner);
                }
            }
            // Relative majority: drop the estimate base when more reads
            // deleted it than kept it (absolute majority is too
            // conservative when some reads are misaligned).
            if del_votes[p] > sub_votes[p].total() {
                continue;
            }
            out.push(sub_votes[p].winner().unwrap_or(estimate[p]));
        }
        if let Some(winner) = ins_votes[est_len].winner() {
            if ins_votes[est_len].count(winner) > half {
                out.push(winner);
            }
        }
        // Enforce the design length: truncate overshoot, pad undershoot
        // from the unaligned tail majority of the raw reads.
        out.truncate(strand_len);
        while out.len() < strand_len {
            let j = out.len();
            let mut tally = VoteTally::new();
            for read in reads {
                if let Some(b) = read.get(j) {
                    tally.vote(b);
                }
            }
            out.push(tally.winner().unwrap_or(Base::A));
        }
        out
    }
}

impl TraceReconstructor for Iterative {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        let mut stats = LookaheadFilterStats::default();
        let mut estimate = one_way_bma_filtered(reads, strand_len, self.lookahead, &mut stats);
        for _ in 0..self.max_rounds {
            // Anchored rescan locks drifted pointers back onto the current
            // estimate, then alignment voting applies majority corrections.
            let rescanned = anchored_one_way_bma_filtered(
                reads,
                Some(&estimate),
                2,
                strand_len,
                self.lookahead,
                &mut stats,
            );
            let refined = self.refine(&rescanned, reads, strand_len);
            if refined == estimate {
                break;
            }
            estimate = refined;
        }
        estimate
    }

    fn name(&self) -> String {
        "iterative".to_owned()
    }
}

/// Two-way Iterative reconstruction — the improvement the paper proposes
/// (§4.3): run [`Iterative`] forward and on the reversed cluster, and
/// concatenate the halves each direction reconstructs reliably.
///
/// Each direction anchors at its own strand end, so terminal error skew no
/// longer poisons the whole strand — only the half farthest from each
/// anchor, which is exactly the half the other direction supplies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoWayIterative {
    /// The underlying iterative configuration.
    pub inner: Iterative,
}

impl TraceReconstructor for TwoWayIterative {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        let forward = self.inner.reconstruct(reads, strand_len);
        let reversed: Vec<Strand> = reads.iter().map(Strand::reversed).collect();
        let backward = self.inner.reconstruct(&reversed, strand_len);
        let head_len = strand_len.div_ceil(2);
        let mut out = forward.substrand(0..head_len);
        let tail = backward.substrand(0..strand_len - head_len).reversed();
        out.extend(tail.iter());
        // The stitch point can misalign by a base or two when the halves
        // drifted differently; a final alignment-vote pass heals it.
        self.inner.refine(&out, reads, strand_len)
    }

    fn name(&self) -> String {
        "iterative-twoway".to_owned()
    }
}

/// The reconstruction suite evaluated throughout the paper: BMA, Divider
/// BMA and Iterative.
pub fn paper_suite() -> Vec<Box<dyn TraceReconstructor>> {
    vec![
        Box::new(BmaLookahead::default()),
        Box::new(DividerBma),
        Box::new(Iterative::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded as seed_rng;
    use dnasim_metrics::hamming;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    fn all_algorithms() -> Vec<Box<dyn TraceReconstructor>> {
        vec![
            Box::new(MajorityVote),
            Box::new(BmaLookahead::default()),
            Box::new(OneWayBma::default()),
            Box::new(DividerBma),
            Box::new(Iterative::default()),
            Box::new(TwoWayIterative::default()),
        ]
    }

    #[test]
    fn clean_cluster_reconstructs_exactly() {
        let reference = s("ACGTACGTACGTACGTACGT");
        let reads = vec![reference.clone(); 5];
        for algo in all_algorithms() {
            assert_eq!(
                algo.reconstruct(&reads, 20),
                reference,
                "{} failed on a clean cluster",
                algo.name()
            );
        }
    }

    #[test]
    fn output_length_is_always_design_length() {
        let reads = vec![s("ACGTACG"), s("ACGTACGTACGTAAA"), s("AC")];
        for algo in all_algorithms() {
            for len in [5, 10, 12] {
                assert_eq!(
                    algo.reconstruct(&reads, len).len(),
                    len,
                    "{} wrong length",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn empty_cluster_yields_filler_of_design_length() {
        for algo in all_algorithms() {
            assert_eq!(algo.reconstruct(&[], 8).len(), 8, "{}", algo.name());
        }
    }

    #[test]
    fn bma_corrects_scattered_errors() {
        let reference = s("ACGTACGTACGTACGTACGTACGTACGTAC");
        let reads = vec![
            s("ACGTACGTACGTACGTACGTACGTACGTAC"),
            s("ACGTACTTACGTACGTACGTACGTACGTAC"),  // substitution
            s("ACGTACGTACGTACGACGTACGTACGTAC"),   // deletion
            s("ACGTACGTACGGTACGTACGTACGTACGTAC"), // insertion
            s("ACGTACGTACGTACGTACGTACGTACGTAC"),
        ];
        let bma = BmaLookahead::default();
        assert_eq!(bma.reconstruct(&reads, 30), reference);
    }

    #[test]
    fn iterative_corrects_scattered_errors() {
        let reference = s("ACGTACGTACGTACGTACGTACGTACGTAC");
        let reads = vec![
            s("ACGTACGTACGTACGTACGTACGTACGTAC"),
            s("ACGTACTTACGTACGTACGTACGTACGTAC"),
            s("ACGTACGTACGTACGACGTACGTACGTAC"),
            s("ACGTACGTACGGTACGTACGTACGTACGTAC"),
            s("ACGTACGTACGTACGTACGTACGTACGTAC"),
        ];
        let algo = Iterative::default();
        assert_eq!(algo.reconstruct(&reads, 30), reference);
    }

    #[test]
    fn divbma_uses_equal_length_reads_only() {
        // Two equal-length reads agree; a shorter read would shift votes if
        // it were (incorrectly) included.
        let reads = vec![s("ACGT"), s("ACGT"), s("CGT")];
        assert_eq!(DividerBma.reconstruct(&reads, 4), s("ACGT"));
    }

    #[test]
    fn divbma_falls_back_when_no_equal_length_reads() {
        let reads = vec![s("ACG"), s("ACG")];
        let out = DividerBma.reconstruct(&reads, 4);
        assert_eq!(out.len(), 4);
        assert!(out.starts_with(&s("ACG")));
    }

    /// Monte-Carlo comparison on a uniform-error channel: the alignment-
    /// aware algorithms should clearly beat unaligned majority, and
    /// Iterative should beat two-way BMA per-strand (the paper's ordering).
    #[test]
    fn algorithm_ordering_on_uniform_noise() {
        let model = NaiveModel::with_total_rate(0.06);
        let mut rng = seed_rng(77);
        let trials = 60;
        let coverage = 6;
        let len = 110;
        let mut exact = std::collections::HashMap::<String, usize>::new();
        for _ in 0..trials {
            let reference = Strand::random(len, &mut rng);
            let reads: Vec<Strand> = (0..coverage)
                .map(|_| model.corrupt(&reference, &mut rng))
                .collect();
            for algo in [
                Box::new(MajorityVote) as Box<dyn TraceReconstructor>,
                Box::new(BmaLookahead::default()),
                Box::new(Iterative::default()),
            ] {
                let est = algo.reconstruct(&reads, len);
                if est == reference {
                    *exact.entry(algo.name()).or_default() += 1;
                }
            }
        }
        let majority = exact.get("majority").copied().unwrap_or(0);
        let bma = exact.get("bma").copied().unwrap_or(0);
        let iterative = exact.get("iterative").copied().unwrap_or(0);
        assert!(
            bma > majority,
            "bma {bma} should beat unaligned majority {majority}"
        );
        // Iterative and two-way BMA are statistically close at this
        // coverage; allow a small sampling margin on 60 trials.
        assert!(
            iterative + 4 >= bma,
            "iterative {iterative} should be at least as accurate as bma {bma}"
        );
        assert!(iterative > trials / 2, "iterative too weak: {iterative}/{trials}");
    }

    /// The paper's one-way signature: Iterative's Hamming errors grow
    /// toward the strand end, BMA's pile in the middle.
    #[test]
    fn error_profiles_have_characteristic_shapes() {
        let model = NaiveModel::with_total_rate(0.12);
        let mut rng = seed_rng(99);
        let len = 120;
        let trials = 120;
        let coverage = 5;
        let mut iterative_profile = vec![0usize; len];
        let mut bma_profile = vec![0usize; len];
        for _ in 0..trials {
            let reference = Strand::random(len, &mut rng);
            let reads: Vec<Strand> = (0..coverage)
                .map(|_| model.corrupt(&reference, &mut rng))
                .collect();
            let it = Iterative::default().reconstruct(&reads, len);
            let bm = BmaLookahead::default().reconstruct(&reads, len);
            for i in 0..len {
                if it[i] != reference[i] {
                    iterative_profile[i] += 1;
                }
                if bm[i] != reference[i] {
                    bma_profile[i] += 1;
                }
            }
        }
        let third = len / 3;
        let sum = |p: &[usize]| p.iter().sum::<usize>().max(1);
        let head: usize = iterative_profile[..third].iter().sum();
        let tail: usize = iterative_profile[len - third..].iter().sum();
        assert!(
            tail > 2 * head.max(1),
            "iterative profile not end-skewed: head {head}, tail {tail} (total {})",
            sum(&iterative_profile)
        );
        let mid: usize = bma_profile[third..2 * third].iter().sum();
        let ends: usize = bma_profile[..third]
            .iter()
            .chain(&bma_profile[len - third..])
            .sum();
        assert!(
            2 * mid > ends,
            "bma profile not middle-skewed: mid {mid}, ends {ends}"
        );
    }

    /// The paper's §4.3 claim: two-way execution significantly improves
    /// Iterative reconstruction. (Behaviour under the realistic terminal
    /// skew is asserted against the Nanopore twin in the pipeline tests;
    /// here we verify the clean-room uniform case.)
    #[test]
    fn two_way_iterative_improves_exact_reconstruction() {
        use dnasim_channel::{ParametricModel, SpatialDistribution};
        let model = ParametricModel::new(0.10, SpatialDistribution::Uniform);
        let mut rng = seed_rng(123);
        let len = 110;
        let trials = 80;
        let coverage = 6;
        let mut one_way_errors = 0usize;
        let mut two_way_errors = 0usize;
        let mut one_way_exact = 0usize;
        let mut two_way_exact = 0usize;
        for _ in 0..trials {
            let reference = Strand::random(len, &mut rng);
            let reads: Vec<Strand> = (0..coverage)
                .map(|_| model.corrupt(&reference, &mut rng))
                .collect();
            let ow = Iterative::default().reconstruct(&reads, len);
            let tw = TwoWayIterative::default().reconstruct(&reads, len);
            one_way_errors += hamming(&reference, &ow);
            two_way_errors += hamming(&reference, &tw);
            one_way_exact += usize::from(ow == reference);
            two_way_exact += usize::from(tw == reference);
        }
        // Two-way execution must recover more strands exactly, without a
        // meaningful regression in total residual errors.
        assert!(
            two_way_exact > one_way_exact,
            "two-way exact ({two_way_exact}) should beat one-way ({one_way_exact})"
        );
        assert!(
            two_way_errors < one_way_errors + one_way_errors / 10,
            "two-way residual errors regressed: {two_way_errors} vs {one_way_errors}"
        );
    }

    #[test]
    fn paper_suite_has_three_algorithms() {
        let suite = paper_suite();
        let names: Vec<String> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["bma", "divbma", "iterative"]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MajorityVote.name(), "majority");
        assert_eq!(OneWayBma::default().name(), "bma-oneway");
        assert_eq!(TwoWayIterative::default().name(), "iterative-twoway");
    }
}
