//! Shared consensus primitives: per-position voting and the one-way
//! look-ahead scan that BMA and Iterative reconstruction build on.

use dnasim_core::{Base, Strand};
use dnasim_metrics::QGramProfile;

/// Gram length for the unanimity screen — the clusterer's default `q`.
const UNANIMITY_Q: usize = 5;

/// A per-position vote tally over the four bases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct VoteTally {
    counts: [usize; 4],
}

impl VoteTally {
    pub(crate) fn new() -> VoteTally {
        VoteTally::default()
    }

    pub(crate) fn vote(&mut self, base: Base) {
        self.counts[base.index()] += 1;
    }

    pub(crate) fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    pub(crate) fn count(&self, base: Base) -> usize {
        self.counts[base.index()]
    }

    /// The winning base (ties break toward alphabet order), or `None` if no
    /// votes were cast.
    pub(crate) fn winner(&self) -> Option<Base> {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return None;
        }
        Base::ALL
            .into_iter()
            .find(|b| self.counts[b.index()] == max)
    }
}

/// Plain per-position majority vote over unaligned reads — the simplest
/// possible reconstructor and the column rule other algorithms reuse.
///
/// Position `j` of the output is the majority of `reads[t][j]` over all
/// reads long enough; positions no read covers fall back to `A`.
pub fn positional_majority(reads: &[Strand], strand_len: usize) -> Strand {
    let mut out = Strand::with_capacity(strand_len);
    for j in 0..strand_len {
        let mut tally = VoteTally::new();
        for read in reads {
            if let Some(b) = read.get(j) {
                tally.vote(b);
            }
        }
        out.push(tally.winner().unwrap_or(Base::A));
    }
    out
}

/// One-way Bitwise Majority Alignment with a look-ahead window.
///
/// Scans output positions left to right keeping a pointer into every read.
/// Each column takes the majority of the pointed-at symbols; reads that
/// disagree are classified as substitution / deletion / insertion by
/// scoring their next `lookahead` symbols against the *future majority*
/// (the majority of the other reads' upcoming symbols), and their pointer
/// is advanced accordingly. Errors therefore propagate only forward — the
/// linear error profile the paper measures for one-way algorithms.
pub fn one_way_bma(reads: &[Strand], strand_len: usize, lookahead: usize) -> Strand {
    anchored_one_way_bma(reads, None, 0, strand_len, lookahead)
}

/// [`one_way_bma`] with an optional *anchor*: a previous estimate whose
/// base at each output position casts `anchor_weight` extra votes.
///
/// Re-scanning with the last estimate as anchor stabilises pointer drift:
/// reads that lost sync re-lock onto the anchor's context, while genuine
/// anchor errors are outvoted by the reads. Iterative reconstruction
/// alternates this with alignment-based refinement.
pub fn anchored_one_way_bma(
    reads: &[Strand],
    anchor: Option<&Strand>,
    anchor_weight: usize,
    strand_len: usize,
    lookahead: usize,
) -> Strand {
    scan_core(reads, anchor, anchor_weight, strand_len, lookahead, None)
}

/// Work skipped (and done) by the filtered look-ahead scan.
///
/// The counters exist so tests and diagnostics can prove the prefilter
/// actually engaged; they have no effect on the reconstruction itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookaheadFilterStats {
    /// Clusters short-circuited whole by the q-gram unanimity fast path.
    pub unanimous_clusters: usize,
    /// Columns whose look-ahead window was never tallied because every
    /// read agreed with the column majority.
    pub skipped_windows: usize,
    /// Columns that did tally the look-ahead window.
    pub scored_windows: usize,
}

impl LookaheadFilterStats {
    /// Sums another run's counters into this one.
    pub fn absorb(&mut self, other: &LookaheadFilterStats) {
        self.unanimous_clusters += other.unanimous_clusters;
        self.skipped_windows += other.skipped_windows;
        self.scored_windows += other.scored_windows;
    }
}

/// [`one_way_bma`] with the q-gram error-ball prefilter — byte-identical
/// output, less work (differentially tested against the unfiltered scan).
///
/// Two exact short-circuits:
///
/// * **Unanimity fast path** — a [`QGramProfile`] radius-0 screen (any
///   nonzero lower bound proves two reads differ) gates a byte-equality
///   check; a cluster of identical reads skips the scan entirely, since
///   every column's majority is unanimous and no pointer ever drifts.
/// * **Lazy look-ahead** — the future-majority window is only consulted
///   when classifying a *disagreeing* read, so columns where every read
///   matches the majority never tally it.
pub fn one_way_bma_filtered(
    reads: &[Strand],
    strand_len: usize,
    lookahead: usize,
    stats: &mut LookaheadFilterStats,
) -> Strand {
    anchored_one_way_bma_filtered(reads, None, 0, strand_len, lookahead, stats)
}

/// [`anchored_one_way_bma`] with the q-gram error-ball prefilter — see
/// [`one_way_bma_filtered`]. The unanimity fast path only applies to
/// unanchored scans (an anchor can outvote unanimous reads), so anchored
/// calls get the lazy look-ahead alone.
pub fn anchored_one_way_bma_filtered(
    reads: &[Strand],
    anchor: Option<&Strand>,
    anchor_weight: usize,
    strand_len: usize,
    lookahead: usize,
    stats: &mut LookaheadFilterStats,
) -> Strand {
    if anchor.is_none() || anchor_weight == 0 {
        if let Some(out) = unanimous_consensus(reads, strand_len) {
            stats.unanimous_clusters += 1;
            return out;
        }
    }
    scan_core(reads, anchor, anchor_weight, strand_len, lookahead, Some(stats))
}

/// The scan's output when every read is byte-identical, or `None` when the
/// reads differ (or might): the lone read value, truncated to the design
/// length or padded with the scan's `A` filler.
///
/// Identity is screened with the q-gram error-ball bound first — a nonzero
/// lower bound *proves* a difference without touching the bases — and only
/// bound-0 survivors pay for the exact byte comparison, mirroring how the
/// clusterer discharges hopeless candidates before the kernel.
fn unanimous_consensus(reads: &[Strand], strand_len: usize) -> Option<Strand> {
    let (first, rest) = reads.split_first()?;
    if rest.iter().any(|r| r.len() != first.len()) {
        return None;
    }
    if !rest.is_empty() {
        let profile = QGramProfile::new(first, UNANIMITY_Q);
        for read in rest.iter() {
            if profile.distance_lower_bound(&QGramProfile::new(read, UNANIMITY_Q)) != 0 {
                return None;
            }
        }
        // Bound 0 is necessary but not sufficient: confirm byte identity.
        if rest.iter().any(|r| r != first) {
            return None;
        }
    }
    // Unanimous cluster: every column majority is the read's own base and
    // no pointer ever drifts; past the read's end the scan falls back to
    // the unaligned column majority, which is empty — the `A` filler.
    let mut out = Strand::with_capacity(strand_len);
    out.extend(first.iter().take(strand_len));
    while out.len() < strand_len {
        out.push(Base::A);
    }
    Some(out)
}

/// The one-way scan shared by the oracle and filtered entry points. With
/// `filter: Some(_)`, the look-ahead window is tallied lazily (only for
/// columns with a disagreeing read) — provably output-identical, since the
/// window is consulted nowhere else.
fn scan_core(
    reads: &[Strand],
    anchor: Option<&Strand>,
    anchor_weight: usize,
    strand_len: usize,
    lookahead: usize,
    mut filter: Option<&mut LookaheadFilterStats>,
) -> Strand {
    let mut out = Strand::with_capacity(strand_len);
    let mut ptrs: Vec<usize> = vec![0; reads.len()];
    // Look-ahead buffers reused across all output positions: allocating
    // them inside the column loop dominated this scan's cost.
    let mut future: Vec<VoteTally> = vec![VoteTally::new(); lookahead];
    let mut future_majority: Vec<Option<Base>> = vec![None; lookahead];
    for j in 0..strand_len {
        // Column majority (the anchor, when present, casts weighted votes).
        let mut tally = VoteTally::new();
        for (read, &ptr) in reads.iter().zip(&ptrs) {
            if let Some(b) = read.get(ptr) {
                tally.vote(b);
            }
        }
        if let (Some(anchor), true) = (anchor, anchor_weight > 0) {
            if let Some(b) = anchor.get(j) {
                for _ in 0..anchor_weight {
                    tally.vote(b);
                }
            }
        }
        let Some(majority) = tally.winner() else {
            // Every read exhausted: fall back to unaligned column majority
            // for the remaining positions.
            let j = out.len();
            let mut fallback = VoteTally::new();
            for read in reads {
                if let Some(b) = read.get(j) {
                    fallback.vote(b);
                }
            }
            out.push(fallback.winner().unwrap_or(Base::A));
            continue;
        };
        out.push(majority);

        // The future-majority window is only ever consulted when a read
        // *disagrees* with the column majority, so the filtered scan skips
        // tallying it for fully-agreeing columns (the common case on
        // healthy clusters) — output-identical by construction.
        if let Some(stats) = filter.as_deref_mut() {
            let any_disagree = reads
                .iter()
                .zip(&ptrs)
                .any(|(read, &ptr)| matches!(read.get(ptr), Some(b) if b != majority));
            if !any_disagree {
                stats.skipped_windows += 1;
                for (read, ptr) in reads.iter().zip(&mut ptrs) {
                    if read.get(*ptr).is_some() {
                        *ptr += 1;
                    }
                }
                continue;
            }
            stats.scored_windows += 1;
        }

        // Future majority over the look-ahead window, computed from the
        // reads that *agreed* with this column's majority (their pointers
        // are most likely in sync; drifted reads would pollute the window).
        future.iter_mut().for_each(|t| *t = VoteTally::new());
        for (read, &ptr) in reads.iter().zip(&ptrs) {
            if read.get(ptr) != Some(majority) {
                continue;
            }
            for (k, tally) in future.iter_mut().enumerate() {
                if let Some(b) = read.get(ptr + 1 + k) {
                    tally.vote(b);
                }
            }
        }
        if let (Some(anchor), true) = (anchor, anchor_weight > 0) {
            for (k, tally) in future.iter_mut().enumerate() {
                if let Some(b) = anchor.get(j + 1 + k) {
                    for _ in 0..anchor_weight {
                        tally.vote(b);
                    }
                }
            }
        }
        for (fm, tally) in future_majority.iter_mut().zip(&future) {
            *fm = tally.winner();
        }

        for (read, ptr) in reads.iter().zip(&mut ptrs) {
            match read.get(*ptr) {
                None => {} // exhausted
                Some(b) if b == majority => *ptr += 1,
                Some(_) => {
                    // Hypothesis windows: where would the next symbols sit
                    // if this column's mismatch were a substitution (skip
                    // one), a deletion in the read (skip none), or an
                    // insertion in the read (skip two)?
                    let score = |offset: usize| -> usize {
                        future_majority
                            .iter()
                            .enumerate()
                            .filter(|(k, fm)| {
                                fm.is_some() && read.get(*ptr + offset + k) == **fm
                            })
                            .count()
                    };
                    let sub = score(1);
                    let del = score(0);
                    let ins = score(2);
                    // Ties prefer substitution (keeps the pointer in sync).
                    if sub >= del && sub >= ins {
                        *ptr += 1;
                    } else if del >= ins {
                        // Read is missing the majority base: don't advance.
                    } else {
                        *ptr += 2;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn tally_winner_breaks_ties_alphabetically() {
        let mut t = VoteTally::new();
        t.vote(Base::T);
        t.vote(Base::C);
        assert_eq!(t.winner(), Some(Base::C));
        assert_eq!(t.total(), 2);
        assert_eq!(t.count(Base::T), 1);
    }

    #[test]
    fn tally_empty_has_no_winner() {
        assert_eq!(VoteTally::new().winner(), None);
    }

    #[test]
    fn majority_on_identical_reads() {
        let reads = vec![s("ACGT"), s("ACGT"), s("ACGT")];
        assert_eq!(positional_majority(&reads, 4), s("ACGT"));
    }

    #[test]
    fn majority_outvotes_single_substitution() {
        let reads = vec![s("ACGT"), s("AAGT"), s("ACGT")];
        assert_eq!(positional_majority(&reads, 4), s("ACGT"));
    }

    #[test]
    fn majority_fills_uncovered_positions_with_a() {
        let reads = vec![s("GG")];
        assert_eq!(positional_majority(&reads, 4), s("GGAA"));
    }

    #[test]
    fn one_way_bma_recovers_clean_cluster() {
        let reads = vec![s("ACGTACGTAC"); 5];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_deletion() {
        // One read lost the G at position 2; majority + resync recovers it.
        let reads = vec![s("ACGTACGTAC"), s("ACTACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_insertion() {
        let reads = vec![s("ACGTACGTAC"), s("ACTGTACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_substitution() {
        let reads = vec![s("ACGTACGTAC"), s("ACATACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_handles_exhausted_reads() {
        let reads = vec![s("AC"), s("AC")];
        let out = one_way_bma(&reads, 5, 3);
        assert_eq!(out.len(), 5);
        assert!(out.starts_with(&s("AC")));
    }

    #[test]
    fn one_way_bma_empty_cluster_yields_filler() {
        let out = one_way_bma(&[], 4, 3);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn one_way_bma_output_length_is_exact() {
        let reads = vec![s("ACGTACG"), s("ACGTACGTACGTACG")];
        assert_eq!(one_way_bma(&reads, 10, 3).len(), 10);
    }

    /// The q-gram prefilter and lazy look-ahead are pure work-skips: the
    /// filtered scan must be byte-identical to the oracle on seeded noisy
    /// corpora — including error rate 0.0, where the unanimity fast path
    /// short-circuits whole clusters.
    #[test]
    fn filtered_scan_matches_oracle_differentially() {
        use dnasim_channel::{ErrorModel, NaiveModel};
        use dnasim_core::rng::seeded;
        let mut total = LookaheadFilterStats::default();
        for (seed, rate) in [(5u64, 0.0f64), (6, 0.0), (17, 0.02), (29, 0.08), (31, 0.15)] {
            let model = NaiveModel::with_total_rate(rate);
            let mut rng = seeded(seed);
            for trial in 0..40 {
                let len = 40 + (trial % 5) * 23;
                let reference = Strand::random(len, &mut rng);
                let coverage = 1 + trial % 7;
                let reads: Vec<Strand> =
                    (0..coverage).map(|_| model.corrupt(&reference, &mut rng)).collect();
                for lookahead in [1usize, 3] {
                    let mut stats = LookaheadFilterStats::default();
                    assert_eq!(
                        one_way_bma_filtered(&reads, len, lookahead, &mut stats),
                        one_way_bma(&reads, len, lookahead),
                        "filtered one-way scan diverged (seed {seed}, rate {rate})"
                    );
                    let anchor = model.corrupt(&reference, &mut rng);
                    assert_eq!(
                        anchored_one_way_bma_filtered(
                            &reads,
                            Some(&anchor),
                            2,
                            len,
                            lookahead,
                            &mut stats
                        ),
                        anchored_one_way_bma(&reads, Some(&anchor), 2, len, lookahead),
                        "filtered anchored scan diverged (seed {seed}, rate {rate})"
                    );
                    total.absorb(&stats);
                }
            }
        }
        // The filter must actually engage, in both modes.
        assert!(total.unanimous_clusters > 0, "unanimity fast path never fired");
        assert!(total.skipped_windows > 0, "lazy look-ahead never skipped a window");
        assert!(total.scored_windows > 0, "noisy columns must still score windows");
    }

    #[test]
    fn unanimity_fast_path_pads_and_truncates_like_the_scan() {
        for (reads, len) in [
            (vec![s("ACGTACGTACGT"); 4], 8usize),
            (vec![s("ACGTACGTACGT"); 4], 12),
            (vec![s("ACGT"); 3], 9),
            (vec![s("ACGTACGTACGT")], 12),
        ] {
            let mut stats = LookaheadFilterStats::default();
            assert_eq!(
                one_way_bma_filtered(&reads, len, 3, &mut stats),
                one_way_bma(&reads, len, 3),
                "unanimous cluster output diverged at design length {len}"
            );
            assert_eq!(stats.unanimous_clusters, 1);
        }
        // Empty clusters skip the fast path but still match the oracle.
        let mut stats = LookaheadFilterStats::default();
        assert_eq!(one_way_bma_filtered(&[], 5, 3, &mut stats), one_way_bma(&[], 5, 3));
        assert_eq!(stats.unanimous_clusters, 0);
    }
}
