//! Shared consensus primitives: per-position voting and the one-way
//! look-ahead scan that BMA and Iterative reconstruction build on.

use dnasim_core::{Base, Strand};

/// A per-position vote tally over the four bases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct VoteTally {
    counts: [usize; 4],
}

impl VoteTally {
    pub(crate) fn new() -> VoteTally {
        VoteTally::default()
    }

    pub(crate) fn vote(&mut self, base: Base) {
        self.counts[base.index()] += 1;
    }

    pub(crate) fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    pub(crate) fn count(&self, base: Base) -> usize {
        self.counts[base.index()]
    }

    /// The winning base (ties break toward alphabet order), or `None` if no
    /// votes were cast.
    pub(crate) fn winner(&self) -> Option<Base> {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return None;
        }
        Base::ALL
            .into_iter()
            .find(|b| self.counts[b.index()] == max)
    }
}

/// Plain per-position majority vote over unaligned reads — the simplest
/// possible reconstructor and the column rule other algorithms reuse.
///
/// Position `j` of the output is the majority of `reads[t][j]` over all
/// reads long enough; positions no read covers fall back to `A`.
pub fn positional_majority(reads: &[Strand], strand_len: usize) -> Strand {
    let mut out = Strand::with_capacity(strand_len);
    for j in 0..strand_len {
        let mut tally = VoteTally::new();
        for read in reads {
            if let Some(b) = read.get(j) {
                tally.vote(b);
            }
        }
        out.push(tally.winner().unwrap_or(Base::A));
    }
    out
}

/// One-way Bitwise Majority Alignment with a look-ahead window.
///
/// Scans output positions left to right keeping a pointer into every read.
/// Each column takes the majority of the pointed-at symbols; reads that
/// disagree are classified as substitution / deletion / insertion by
/// scoring their next `lookahead` symbols against the *future majority*
/// (the majority of the other reads' upcoming symbols), and their pointer
/// is advanced accordingly. Errors therefore propagate only forward — the
/// linear error profile the paper measures for one-way algorithms.
pub fn one_way_bma(reads: &[Strand], strand_len: usize, lookahead: usize) -> Strand {
    anchored_one_way_bma(reads, None, 0, strand_len, lookahead)
}

/// [`one_way_bma`] with an optional *anchor*: a previous estimate whose
/// base at each output position casts `anchor_weight` extra votes.
///
/// Re-scanning with the last estimate as anchor stabilises pointer drift:
/// reads that lost sync re-lock onto the anchor's context, while genuine
/// anchor errors are outvoted by the reads. Iterative reconstruction
/// alternates this with alignment-based refinement.
pub fn anchored_one_way_bma(
    reads: &[Strand],
    anchor: Option<&Strand>,
    anchor_weight: usize,
    strand_len: usize,
    lookahead: usize,
) -> Strand {
    let mut out = Strand::with_capacity(strand_len);
    let mut ptrs: Vec<usize> = vec![0; reads.len()];
    // Look-ahead buffers reused across all output positions: allocating
    // them inside the column loop dominated this scan's cost.
    let mut future: Vec<VoteTally> = vec![VoteTally::new(); lookahead];
    let mut future_majority: Vec<Option<Base>> = vec![None; lookahead];
    for j in 0..strand_len {
        // Column majority (the anchor, when present, casts weighted votes).
        let mut tally = VoteTally::new();
        for (read, &ptr) in reads.iter().zip(&ptrs) {
            if let Some(b) = read.get(ptr) {
                tally.vote(b);
            }
        }
        if let (Some(anchor), true) = (anchor, anchor_weight > 0) {
            if let Some(b) = anchor.get(j) {
                for _ in 0..anchor_weight {
                    tally.vote(b);
                }
            }
        }
        let Some(majority) = tally.winner() else {
            // Every read exhausted: fall back to unaligned column majority
            // for the remaining positions.
            let j = out.len();
            let mut fallback = VoteTally::new();
            for read in reads {
                if let Some(b) = read.get(j) {
                    fallback.vote(b);
                }
            }
            out.push(fallback.winner().unwrap_or(Base::A));
            continue;
        };
        out.push(majority);

        // Future majority over the look-ahead window, computed from the
        // reads that *agreed* with this column's majority (their pointers
        // are most likely in sync; drifted reads would pollute the window).
        future.iter_mut().for_each(|t| *t = VoteTally::new());
        for (read, &ptr) in reads.iter().zip(&ptrs) {
            if read.get(ptr) != Some(majority) {
                continue;
            }
            for (k, tally) in future.iter_mut().enumerate() {
                if let Some(b) = read.get(ptr + 1 + k) {
                    tally.vote(b);
                }
            }
        }
        if let (Some(anchor), true) = (anchor, anchor_weight > 0) {
            for (k, tally) in future.iter_mut().enumerate() {
                if let Some(b) = anchor.get(j + 1 + k) {
                    for _ in 0..anchor_weight {
                        tally.vote(b);
                    }
                }
            }
        }
        for (fm, tally) in future_majority.iter_mut().zip(&future) {
            *fm = tally.winner();
        }

        for (read, ptr) in reads.iter().zip(&mut ptrs) {
            match read.get(*ptr) {
                None => {} // exhausted
                Some(b) if b == majority => *ptr += 1,
                Some(_) => {
                    // Hypothesis windows: where would the next symbols sit
                    // if this column's mismatch were a substitution (skip
                    // one), a deletion in the read (skip none), or an
                    // insertion in the read (skip two)?
                    let score = |offset: usize| -> usize {
                        future_majority
                            .iter()
                            .enumerate()
                            .filter(|(k, fm)| {
                                fm.is_some() && read.get(*ptr + offset + k) == **fm
                            })
                            .count()
                    };
                    let sub = score(1);
                    let del = score(0);
                    let ins = score(2);
                    // Ties prefer substitution (keeps the pointer in sync).
                    if sub >= del && sub >= ins {
                        *ptr += 1;
                    } else if del >= ins {
                        // Read is missing the majority base: don't advance.
                    } else {
                        *ptr += 2;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn tally_winner_breaks_ties_alphabetically() {
        let mut t = VoteTally::new();
        t.vote(Base::T);
        t.vote(Base::C);
        assert_eq!(t.winner(), Some(Base::C));
        assert_eq!(t.total(), 2);
        assert_eq!(t.count(Base::T), 1);
    }

    #[test]
    fn tally_empty_has_no_winner() {
        assert_eq!(VoteTally::new().winner(), None);
    }

    #[test]
    fn majority_on_identical_reads() {
        let reads = vec![s("ACGT"), s("ACGT"), s("ACGT")];
        assert_eq!(positional_majority(&reads, 4), s("ACGT"));
    }

    #[test]
    fn majority_outvotes_single_substitution() {
        let reads = vec![s("ACGT"), s("AAGT"), s("ACGT")];
        assert_eq!(positional_majority(&reads, 4), s("ACGT"));
    }

    #[test]
    fn majority_fills_uncovered_positions_with_a() {
        let reads = vec![s("GG")];
        assert_eq!(positional_majority(&reads, 4), s("GGAA"));
    }

    #[test]
    fn one_way_bma_recovers_clean_cluster() {
        let reads = vec![s("ACGTACGTAC"); 5];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_deletion() {
        // One read lost the G at position 2; majority + resync recovers it.
        let reads = vec![s("ACGTACGTAC"), s("ACTACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_insertion() {
        let reads = vec![s("ACGTACGTAC"), s("ACTGTACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_corrects_substitution() {
        let reads = vec![s("ACGTACGTAC"), s("ACATACGTAC"), s("ACGTACGTAC")];
        assert_eq!(one_way_bma(&reads, 10, 3), s("ACGTACGTAC"));
    }

    #[test]
    fn one_way_bma_handles_exhausted_reads() {
        let reads = vec![s("AC"), s("AC")];
        let out = one_way_bma(&reads, 5, 3);
        assert_eq!(out.len(), 5);
        assert!(out.starts_with(&s("AC")));
    }

    #[test]
    fn one_way_bma_empty_cluster_yields_filler() {
        let out = one_way_bma(&[], 4, 3);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn one_way_bma_output_length_is_exact() {
        let reads = vec![s("ACGTACG"), s("ACGTACGTACGTACG")];
        assert_eq!(one_way_bma(&reads, 10, 3).len(), 10);
    }
}
