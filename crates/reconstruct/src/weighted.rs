//! Weighted Iterative reconstruction — the paper's second §4.3 proposal:
//! "assign a higher weightage to noisy copies that closely align with the
//! partially reconstructed strand".
//!
//! Each refinement round scores every read against the current estimate
//! (gestalt similarity) and lets high-scoring reads cast more votes:
//! near-junk reads stop dragging the consensus, without being discarded
//! outright (they still contribute where they do align).

use dnasim_core::rng::seeded;
use dnasim_core::{Base, EditOp, Strand};
use dnasim_metrics::gestalt_score;
use dnasim_profile::{edit_script_with, EditScratch, TieBreak};

use crate::algorithms::TraceReconstructor;
use crate::consensus::{one_way_bma, VoteTally};

/// Iterative reconstruction with per-read alignment weighting.
///
/// # Examples
///
/// ```
/// use dnasim_core::Strand;
/// use dnasim_reconstruct::{TraceReconstructor, WeightedIterative};
///
/// let reference: Strand = "ACGTACGTACGTACGTACGT".parse()?;
/// let reads = vec![
///     reference.clone(),
///     "ACGTACGACGTACGTACGT".parse()?,
///     reference.clone(),
/// ];
/// let algo = WeightedIterative::default();
/// assert_eq!(algo.reconstruct(&reads, 20), reference);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedIterative {
    /// Look-ahead window for the initial scan.
    pub lookahead: usize,
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Weighting sharpness: vote weight is
    /// `round((score / best_score) ^ sharpness × scale)`. Higher values
    /// suppress poorly-aligned reads harder.
    pub sharpness: f64,
}

impl Default for WeightedIterative {
    fn default() -> WeightedIterative {
        WeightedIterative {
            lookahead: 2,
            max_rounds: 3,
            sharpness: 4.0,
        }
    }
}

/// Integer vote scale: weights are quantised to `0..=VOTE_SCALE`.
const VOTE_SCALE: f64 = 4.0;

impl WeightedIterative {
    /// One weighted alignment-and-vote round.
    fn refine(&self, estimate: &Strand, reads: &[Strand], strand_len: usize) -> Strand {
        let est_len = estimate.len();
        let mut sub_votes: Vec<VoteTally> = vec![VoteTally::new(); est_len];
        let mut del_votes: Vec<usize> = vec![0; est_len];
        let mut ins_votes: Vec<VoteTally> = vec![VoteTally::new(); est_len + 1];
        let mut rng = seeded(0);

        // Score each read against the current estimate.
        let scores: Vec<f64> = reads
            .iter()
            .map(|read| gestalt_score(estimate.as_bases(), read.as_bases()))
            .collect();
        let best = scores.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
        let weights: Vec<usize> = scores
            .iter()
            .map(|&s| ((s / best).powf(self.sharpness) * VOTE_SCALE).round() as usize)
            .collect();
        let total_weight: usize = weights.iter().sum();

        let mut scratch = EditScratch::new();
        for (read, &weight) in reads.iter().zip(&weights) {
            if weight == 0 {
                continue;
            }
            let script =
                edit_script_with(&mut scratch, estimate, read, TieBreak::PreferSubstitution, &mut rng);
            let mut p = 0usize;
            for &op in script.ops() {
                match op {
                    EditOp::Equal(b) => vote_n(&mut sub_votes[p], b, weight),
                    EditOp::Subst { new, .. } => vote_n(&mut sub_votes[p], new, weight),
                    EditOp::Delete(_) => del_votes[p] += weight,
                    EditOp::Insert(b) => vote_n(&mut ins_votes[p], b, weight),
                }
                p += op.reference_advance();
            }
        }

        let half = total_weight / 2;
        let mut out = Strand::with_capacity(strand_len);
        for p in 0..est_len {
            if let Some(winner) = ins_votes[p].winner() {
                if ins_votes[p].count(winner) > half {
                    out.push(winner);
                }
            }
            if del_votes[p] > sub_votes[p].total() {
                continue;
            }
            out.push(sub_votes[p].winner().unwrap_or(estimate[p]));
        }
        if let Some(winner) = ins_votes[est_len].winner() {
            if ins_votes[est_len].count(winner) > half {
                out.push(winner);
            }
        }
        out.truncate(strand_len);
        while out.len() < strand_len {
            let j = out.len();
            let mut tally = VoteTally::new();
            for read in reads {
                if let Some(b) = read.get(j) {
                    tally.vote(b);
                }
            }
            out.push(tally.winner().unwrap_or(Base::A));
        }
        out
    }
}

fn vote_n(tally: &mut VoteTally, base: Base, n: usize) {
    for _ in 0..n {
        tally.vote(base);
    }
}

impl TraceReconstructor for WeightedIterative {
    fn reconstruct(&self, reads: &[Strand], strand_len: usize) -> Strand {
        let mut estimate = one_way_bma(reads, strand_len, self.lookahead);
        for _ in 0..self.max_rounds {
            let refined = self.refine(&estimate, reads, strand_len);
            if refined == estimate {
                break;
            }
            estimate = refined;
        }
        estimate
    }

    fn name(&self) -> String {
        "iterative-weighted".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Iterative;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded as seed_rng;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn clean_cluster_reconstructs_exactly() {
        let reference = s("ACGTACGTACGTACGTACGT");
        let reads = vec![reference.clone(); 5];
        assert_eq!(
            WeightedIterative::default().reconstruct(&reads, 20),
            reference
        );
    }

    #[test]
    fn output_length_is_exact() {
        let reads = vec![s("ACGTACG"), s("AC")];
        for len in [4usize, 10, 16] {
            assert_eq!(
                WeightedIterative::default().reconstruct(&reads, len).len(),
                len
            );
        }
    }

    #[test]
    fn empty_cluster_yields_filler() {
        assert_eq!(WeightedIterative::default().reconstruct(&[], 7).len(), 7);
    }

    #[test]
    fn junk_read_is_downweighted() {
        // Three clean copies plus one garbage read: weighting must keep the
        // garbage from perturbing the consensus.
        let reference = s("ACGTACGTACGTACGTACGTACGTACGT");
        let mut rng = seed_rng(3);
        let junk = Strand::random(28, &mut rng);
        let reads = vec![reference.clone(), junk, reference.clone(), reference.clone()];
        assert_eq!(
            WeightedIterative::default().reconstruct(&reads, 28),
            reference
        );
    }

    /// The §4.3 claim: weighting by alignment with the partial
    /// reconstruction improves accuracy when read quality is dispersed.
    #[test]
    fn weighting_beats_unweighted_with_quality_dispersion() {
        let clean = NaiveModel::with_total_rate(0.03);
        let junky = NaiveModel::with_total_rate(0.30);
        let mut rng = seed_rng(11);
        let trials = 80;
        let mut weighted_exact = 0usize;
        let mut unweighted_exact = 0usize;
        for _ in 0..trials {
            let reference = Strand::random(110, &mut rng);
            // 4 decent reads + 2 junk reads.
            let mut reads: Vec<Strand> =
                (0..4).map(|_| clean.corrupt(&reference, &mut rng)).collect();
            reads.push(junky.corrupt(&reference, &mut rng));
            reads.push(junky.corrupt(&reference, &mut rng));
            if WeightedIterative::default().reconstruct(&reads, 110) == reference {
                weighted_exact += 1;
            }
            if Iterative::default().reconstruct(&reads, 110) == reference {
                unweighted_exact += 1;
            }
        }
        assert!(
            weighted_exact > unweighted_exact,
            "weighted {weighted_exact} should beat unweighted {unweighted_exact}"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(WeightedIterative::default().name(), "iterative-weighted");
    }
}
