//! Parallel per-cluster reconstruction.
//!
//! Trace reconstruction is embarrassingly parallel across clusters: each
//! cluster's estimate depends only on its own reads. These helpers fan a
//! [`TraceReconstructor`] out over a [`Dataset`] on a [`ThreadPool`],
//! preserving cluster order in the output. Because every algorithm in this
//! crate is deterministic and takes no RNG, the estimates are byte-identical
//! to a serial loop for any thread count.

use dnasim_core::{Cluster, Dataset, DnasimError, Strand};
use dnasim_par::ThreadPool;

use crate::algorithms::TraceReconstructor;

/// Reconstructs every cluster of `dataset` with `algorithm` on `pool`.
///
/// Returns one estimate per cluster, in cluster order, each of length
/// `strand_len`. The output is independent of the pool's thread count.
///
/// # Errors
///
/// Returns [`DnasimError::Degraded`] if a worker panicked; completed
/// estimates are discarded rather than returned partially.
pub fn reconstruct_clusters<A>(
    algorithm: &A,
    dataset: &Dataset,
    strand_len: usize,
    pool: &ThreadPool,
) -> Result<Vec<Strand>, DnasimError>
where
    A: TraceReconstructor + Sync + ?Sized,
{
    let estimates = pool.par_map_indexed(dataset.clusters(), |_, cluster: &Cluster| {
        algorithm.reconstruct(cluster.reads(), strand_len)
    })?;
    Ok(estimates)
}

/// Reconstructs every read set in `clusters` (a slice of read vectors) with
/// `algorithm` on `pool`, for callers that hold raw reads rather than a
/// [`Dataset`].
///
/// # Errors
///
/// Returns [`DnasimError::Degraded`] if a worker panicked.
pub fn reconstruct_read_sets<A>(
    algorithm: &A,
    clusters: &[Vec<Strand>],
    strand_len: usize,
    pool: &ThreadPool,
) -> Result<Vec<Strand>, DnasimError>
where
    A: TraceReconstructor + Sync + ?Sized,
{
    let estimates = pool.par_map_indexed(clusters, |_, reads: &Vec<Strand>| {
        algorithm.reconstruct(reads, strand_len)
    })?;
    Ok(estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BmaLookahead, MajorityVote};
    use dnasim_core::rng::seeded;

    fn toy_dataset(clusters: usize, len: usize) -> Dataset {
        let mut rng = seeded(7);
        (0..clusters)
            .map(|_| {
                let reference = Strand::random(len, &mut rng);
                let reads = vec![reference.clone(); 3];
                Cluster::new(reference, reads)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_loop() {
        let ds = toy_dataset(17, 24);
        let algo = BmaLookahead::default();
        let serial: Vec<Strand> = ds
            .iter()
            .map(|c| algo.reconstruct(c.reads(), 24))
            .collect();
        for threads in [1, 2, 4, 8] {
            let par = reconstruct_clusters(&algo, &ds, 24, &ThreadPool::new(threads)).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn read_sets_match_dataset_path() {
        let ds = toy_dataset(9, 16);
        let reads: Vec<Vec<Strand>> = ds.iter().map(|c| c.reads().to_vec()).collect();
        let pool = ThreadPool::new(4);
        let a = reconstruct_clusters(&MajorityVote, &ds, 16, &pool).unwrap();
        let b = reconstruct_read_sets(&MajorityVote, &reads, 16, &pool).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trait_objects_reconstruct_in_parallel() {
        let ds = toy_dataset(5, 12);
        let boxed: Box<dyn TraceReconstructor + Send + Sync> = Box::new(MajorityVote);
        let est = reconstruct_clusters(boxed.as_ref(), &ds, 12, &ThreadPool::new(2)).unwrap();
        assert_eq!(est.len(), 5);
    }
}
