//! Trace-reconstruction algorithms for DNA storage.
//!
//! After sequencing and clustering, each reference strand is represented by
//! a cluster of noisy reads; a trace-reconstruction algorithm maps the
//! cluster back to an estimate of the reference. This crate implements the
//! suite the paper evaluates — [`BmaLookahead`] (two-way Bitwise Majority
//! Alignment with look-ahead), [`DividerBma`], and [`Iterative`] — plus the
//! [`TwoWayIterative`] improvement the paper proposes, a [`MajorityVote`]
//! control, and the [`OneWayBma`] ablation.
//!
//! The algorithms' *error-propagation shapes* matter as much as their
//! accuracy: one-way scanning propagates errors linearly toward the strand
//! end, two-way execution folds them into the middle. The paper's central
//! sensitivity result (§3.4) is built on exactly these shapes.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::Strand;
//! use dnasim_reconstruct::{BmaLookahead, TraceReconstructor};
//!
//! let reference: Strand = "ACGTACGTACGTACGTACGT".parse()?;
//! let reads = vec![
//!     reference.clone(),
//!     "ACGTACGACGTACGTACGT".parse()?, // one deletion
//!     reference.clone(),
//! ];
//! let estimate = BmaLookahead::default().reconstruct(&reads, 20);
//! assert_eq!(estimate, reference);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithms;
mod consensus;
mod msa;
mod parallel;
mod weighted;

pub use algorithms::{
    paper_suite, BmaLookahead, DividerBma, Iterative, MajorityVote, OneWayBma,
    TraceReconstructor, TwoWayIterative,
};
pub use consensus::{
    anchored_one_way_bma, anchored_one_way_bma_filtered, one_way_bma, one_way_bma_filtered,
    positional_majority, LookaheadFilterStats,
};
pub use msa::MsaReconstructor;
pub use parallel::{reconstruct_clusters, reconstruct_read_sets};
pub use weighted::WeightedIterative;
