//! Property-based tests for the reconstruction suite: invariants every
//! algorithm must satisfy on arbitrary clusters.

use dnasim_testkit::prelude::*;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::{Base, Strand};
use dnasim_reconstruct::{
    BmaLookahead, DividerBma, Iterative, MajorityVote, MsaReconstructor, OneWayBma,
    TraceReconstructor, TwoWayIterative, WeightedIterative,
};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

fn suite() -> Vec<Box<dyn TraceReconstructor>> {
    vec![
        Box::new(MajorityVote),
        Box::new(BmaLookahead::default()),
        Box::new(OneWayBma::default()),
        Box::new(DividerBma),
        Box::new(Iterative::default()),
        Box::new(TwoWayIterative::default()),
        Box::new(WeightedIterative::default()),
        Box::new(MsaReconstructor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn output_length_always_matches_design_length(
        reads in dnasim_testkit::collection::vec(strand(0..60), 0..7),
        len in 1usize..60,
    ) {
        for algo in suite() {
            prop_assert_eq!(
                algo.reconstruct(&reads, len).len(),
                len,
                "{} wrong length",
                algo.name()
            );
        }
    }

    #[test]
    fn unanimous_clusters_reconstruct_exactly(
        reference in strand(5..60),
        coverage in 1usize..7,
    ) {
        let reads = vec![reference.clone(); coverage];
        for algo in suite() {
            prop_assert_eq!(
                algo.reconstruct(&reads, reference.len()),
                reference.clone(),
                "{} failed a unanimous cluster",
                algo.name()
            );
        }
    }

    #[test]
    fn reconstruction_is_deterministic(
        reference in strand(20..60),
        seed in any::<u64>(),
    ) {
        let model = NaiveModel::with_total_rate(0.1);
        let mut rng = seeded(seed);
        let reads: Vec<Strand> =
            (0..5).map(|_| model.corrupt(&reference, &mut rng)).collect();
        for algo in suite() {
            let a = algo.reconstruct(&reads, reference.len());
            let b = algo.reconstruct(&reads, reference.len());
            prop_assert_eq!(a, b, "{} not deterministic", algo.name());
        }
    }

    #[test]
    fn single_substitution_is_outvoted(
        reference in strand(10..50),
        position_seed in any::<u64>(),
    ) {
        // Three clean copies against one single-substitution copy: every
        // algorithm that uses majority information must recover exactly.
        let pos = (position_seed as usize) % reference.len();
        let mut corrupted = reference.clone().into_bases();
        corrupted[pos] = corrupted[pos].complement();
        let reads = vec![
            reference.clone(),
            Strand::from_bases(corrupted),
            reference.clone(),
            reference.clone(),
        ];
        for algo in suite() {
            prop_assert_eq!(
                algo.reconstruct(&reads, reference.len()),
                reference.clone(),
                "{} failed to outvote a single substitution",
                algo.name()
            );
        }
    }

    #[test]
    fn read_order_does_not_change_majority_vote(
        reference in strand(10..40),
        seed in any::<u64>(),
    ) {
        // MajorityVote is order-invariant by construction; check it as the
        // representative (alignment-based algorithms may tie-break by
        // order, which is allowed).
        let model = NaiveModel::with_total_rate(0.05);
        let mut rng = seeded(seed);
        let mut reads: Vec<Strand> =
            (0..5).map(|_| model.corrupt(&reference, &mut rng)).collect();
        let forward = MajorityVote.reconstruct(&reads, reference.len());
        reads.reverse();
        let reversed = MajorityVote.reconstruct(&reads, reference.len());
        prop_assert_eq!(forward, reversed);
    }
}
