//! Property tests for the work-stealing pool: exactly-once execution, no
//! deadlock on degenerate shapes (empty, single-item, nested pools), and
//! panic isolation — a worker blown up by a fault injector must surface a
//! typed error, never hang or abort the process.

use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};

use dnasim_core::DnasimError;
use dnasim_faults::{FaultyReader, ReaderFaultPlan};
use dnasim_par::ThreadPool;
use dnasim_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_item_executes_exactly_once(len in 0usize..257, threads in 1usize..9) {
        let counters: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..len).collect();
        ThreadPool::new(threads)
            .par_for_each_indexed(&items, |index, &item| {
                prop_assert_eq_unreachable(index, item);
                counters[index].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        for (index, counter) in counters.iter().enumerate() {
            prop_assert_eq!(counter.load(Ordering::Relaxed), 1, "item {}", index);
        }
    }

    #[test]
    fn map_preserves_order_for_any_shape(len in 0usize..200, threads in 1usize..9) {
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let out = ThreadPool::new(threads)
            .par_map_indexed(&items, |index, &item| (index, item.rotate_left(7)))
            .unwrap();
        let expected: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(index, &item)| (index, item.rotate_left(7)))
            .collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn nested_pools_do_not_deadlock(outer in 1usize..5, inner in 1usize..5, len in 0usize..24) {
        let items: Vec<usize> = (0..len).collect();
        let totals = ThreadPool::new(outer)
            .par_map_indexed(&items, |_, &item| {
                let sub: Vec<usize> = (0..item % 7).collect();
                ThreadPool::new(inner)
                    .par_map_indexed(&sub, |_, &x| x * 2)
                    .unwrap()
                    .iter()
                    .sum::<usize>()
            })
            .unwrap();
        prop_assert_eq!(totals.len(), len);
    }
}

/// Helper used inside the exactly-once property: index and item must agree
/// by construction; a mismatch means the pool handed a worker the wrong
/// slot, which would corrupt results silently. Panics (rather than
/// returning a TestCaseResult) because it runs inside pool workers.
fn prop_assert_eq_unreachable(index: usize, item: usize) {
    assert_eq!(index, item, "pool delivered item {item} under index {index}");
}

#[test]
fn empty_and_single_item_inputs_complete() {
    for threads in [1, 2, 8] {
        let pool = ThreadPool::new(threads);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(pool.par_map_indexed(&empty, |_, &b| b).unwrap(), Vec::<u8>::new());
        assert_eq!(pool.par_map_indexed(&[41u8], |_, &b| b + 1).unwrap(), vec![42]);
    }
}

/// A worker panic provoked by a `crates/faults` injector ([`FaultyReader`]
/// raising a mid-stream I/O error that the worker `expect`s away) must come
/// back as a typed [`DnasimError::Degraded`], not a hang or a process
/// abort.
#[test]
fn injected_worker_panic_yields_typed_error() {
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let payload = vec![0xABu8; 256];
    // Item 7 gets a reader that fails 16 bytes in; everyone else reads
    // clean. The worker's `expect` turns the injected fault into a panic
    // inside the pool.
    let items: Vec<u64> = (0..32).collect();
    let result = ThreadPool::new(4).par_map_indexed(&items, |index, _| {
        let plan = if index == 7 {
            ReaderFaultPlan::io_error(16)
        } else {
            ReaderFaultPlan::truncation(u64::MAX)
        };
        let mut reader = FaultyReader::new(payload.as_slice(), plan);
        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .expect("injected stream fault");
        buf.len()
    });

    std::panic::set_hook(previous_hook);

    let err = result.unwrap_err();
    assert!(
        err.to_string().contains("injected stream fault"),
        "pool error should carry the worker's panic message: {err}"
    );
    match DnasimError::from(err) {
        DnasimError::Degraded { missing, .. } => assert!(missing >= 1),
        other => panic!("expected Degraded, got {other:?}"),
    }
}
