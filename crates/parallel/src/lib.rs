//! `dnasim-par` — a hermetic work-stealing thread pool with a determinism
//! contract.
//!
//! The paper's evaluation is embarrassingly parallel across clusters and
//! sweep points, but the workspace builds with **zero registry
//! dependencies**, so there is no `rayon` to reach for. This crate is the
//! in-tree substitute, built on `std::thread::scope`:
//!
//! * [`ThreadPool::par_map_indexed`] / [`ThreadPool::par_for_each_indexed`]
//!   fan a slice out over workers and return results **in item order**;
//! * scheduling is work-stealing over chunked per-worker deques, so uneven
//!   per-item cost (BMA on a high-coverage cluster next to an erasure) does
//!   not serialise on the slowest worker;
//! * a worker panic is **isolated**: it aborts the remaining work and
//!   surfaces as a typed [`PoolError`] (convertible to
//!   [`DnasimError::Degraded`]), never as a hang or a cross-thread abort.
//!
//! # The determinism contract
//!
//! Output must be **bit-identical for every thread count** (the
//! differential suite in `tests/parallel_equivalence.rs` enforces this for
//! each pipeline stage). The pool guarantees ordering: slot `i` of the
//! result always holds `f(i, &items[i])`. Randomness is the caller's half
//! of the contract: an item must draw only from its own stream, derived
//! with [`SeedSequence::fork`] from the item index — never from a shared
//! generator, whose draw order would depend on scheduling. The
//! [`ThreadPool::par_map_seeded`] helper packages that discipline.
//!
//! ```
//! use dnasim_core::rng::{RngExt, SeedSequence};
//! use dnasim_par::ThreadPool;
//!
//! let seq = SeedSequence::new(42);
//! let items = vec![10u64, 20, 30, 40];
//! let draw = |_, &bound: &u64, rng: &mut dnasim_core::rng::SimRng| rng.random_range(0..bound);
//! let two = ThreadPool::new(2).par_map_seeded(&seq, &items, draw)?;
//! let eight = ThreadPool::new(8).par_map_seeded(&seq, &items, draw)?;
//! assert_eq!(two, eight); // independent of thread count
//! # Ok::<(), dnasim_par::PoolError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use dnasim_core::rng::{SeedSequence, SimRng};
use dnasim_core::{Budget, DnasimError};

/// Environment variable overriding the default worker count
/// ([`ThreadPool::from_env`]). `0`, empty, or unparsable values fall back
/// to the machine's available parallelism.
pub const THREADS_ENV: &str = "DNASIM_THREADS";

/// Target number of chunks handed to each worker up front. More chunks
/// means finer-grained stealing at the cost of more queue traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// A worker panicked inside a parallel region.
///
/// The panic is confined to the failing item: the pool stops issuing work,
/// joins every worker, and reports the first panic's message together with
/// how much of the input had completed. Converts into
/// [`DnasimError::Degraded`] at subsystem boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// The first captured panic message.
    pub panic_message: String,
    /// Items that finished before the abort.
    pub completed: usize,
    /// Items requested.
    pub total: usize,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parallel worker panicked after {}/{} items: {}",
            self.completed, self.total, self.panic_message
        )
    }
}

impl std::error::Error for PoolError {}

impl From<PoolError> for DnasimError {
    fn from(e: PoolError) -> DnasimError {
        DnasimError::Degraded {
            missing: e.total.saturating_sub(e.completed),
            budget: 0,
        }
    }
}

/// Acquires a mutex, recovering the guard if a panicking thread poisoned
/// it. The pool's critical sections are non-panicking (bounded indexing
/// and queue pops), so a poisoned guard still protects consistent data.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A scoped work-stealing thread pool.
///
/// The pool is a lightweight *policy* object (just a worker count): each
/// parallel call spawns scoped workers, runs them to completion, and joins
/// them before returning, so borrows of the input live only for the call.
/// `new(1)` (or [`ThreadPool::serial`]) degenerates to an ordinary loop —
/// same results, same error behaviour, no threads spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: parallel calls run inline.
    pub fn serial() -> ThreadPool {
        ThreadPool::new(1)
    }

    /// A pool sized from the environment: [`THREADS_ENV`] if set to a
    /// positive integer, else the machine's available parallelism.
    pub fn from_env() -> ThreadPool {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        match from_var {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::new(
                std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            ),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..len` and returns the results in
    /// index order.
    ///
    /// This is the pool's base primitive: `f` must be a pure function of
    /// its index (plus captured shared state) for the output to be
    /// independent of thread count — see the crate docs for the seeding
    /// half of that contract.
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics. Remaining work is
    /// abandoned, all workers are joined, and the first panic wins.
    pub fn par_map_len<R, F>(&self, len: usize, f: F) -> Result<Vec<R>, PoolError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(len);
        if workers == 1 {
            return map_serial(len, &f);
        }
        map_stealing(len, workers, &f)
    }

    /// Applies `f(index, &items[index])` to every item and returns the
    /// results in item order. See [`par_map_len`](ThreadPool::par_map_len).
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_len(items.len(), |i| f(i, &items[i]))
    }

    /// Runs `f(index, &items[index])` for every item, for its side effects
    /// on `Sync` state (atomics, mutexed accumulators).
    ///
    /// Every item is executed exactly once on success; ordering across
    /// workers is unspecified, so effects must commute.
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics.
    pub fn par_for_each_indexed<T, F>(&self, items: &[T], f: F) -> Result<(), PoolError>
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_map_len(items.len(), |i| f(i, &items[i]))
            .map(|_: Vec<()>| ())
    }

    /// [`par_map_indexed`](ThreadPool::par_map_indexed) with the workspace
    /// seeding discipline built in: item `i` receives a private [`SimRng`]
    /// forked from `seq` by its index, so its stream is independent of
    /// scheduling, thread count, and every other item.
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics.
    pub fn par_map_seeded<T, R, F>(
        &self,
        seq: &SeedSequence,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut SimRng) -> R + Sync,
    {
        self.par_map_len(items.len(), |i| {
            let mut rng = seq.fork_rng(i as u64);
            f(i, &items[i], &mut rng)
        })
    }

    /// [`par_map_indexed`](ThreadPool::par_map_indexed) metered by a
    /// [`Budget`]: charges one work unit per item *before* fanning out and
    /// maps only the admitted prefix, returning `(results, admitted)`.
    ///
    /// The admission happens in the caller's (serial) thread, so the cut
    /// point is a pure function of the budget — the parallel workers never
    /// touch the meter and cannot perturb determinism. `admitted <
    /// items.len()` means the budget ran dry; the caller decides whether
    /// the prefix is usable (pump-style drivers emit it, all-or-nothing
    /// stages discard it via [`par_map_budgeted`](ThreadPool::par_map_budgeted)).
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics.
    pub fn par_map_admitted<T, R, F>(
        &self,
        budget: &Budget,
        items: &[T],
        f: F,
    ) -> Result<(Vec<R>, usize), PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let admitted = usize::try_from(budget.admit(items.len() as u64)).unwrap_or(usize::MAX);
        let out = self.par_map_len(admitted, |i| f(i, &items[i]))?;
        Ok((out, admitted))
    }

    /// [`par_map_seeded`](ThreadPool::par_map_seeded) metered by a
    /// [`Budget`]: the admitted prefix keeps the per-item
    /// [`SeedSequence::fork`] discipline, so a budgeted run's prefix is
    /// byte-identical to the unbudgeted run's.
    ///
    /// # Errors
    ///
    /// [`PoolError`] if any invocation of `f` panics.
    pub fn par_map_seeded_admitted<T, R, F>(
        &self,
        budget: &Budget,
        seq: &SeedSequence,
        items: &[T],
        f: F,
    ) -> Result<(Vec<R>, usize), PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut SimRng) -> R + Sync,
    {
        self.par_map_admitted(budget, items, |i, item| {
            let mut rng = seq.fork_rng(i as u64);
            f(i, item, &mut rng)
        })
    }

    /// All-or-error form of [`par_map_admitted`](ThreadPool::par_map_admitted)
    /// for stages that cannot use a partial result: checks the budget's
    /// cancellation token, admits every item or fails with the typed
    /// deadline error, and converts pool panics into [`DnasimError`].
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] when cancelled or when fewer than
    /// `items.len()` units remain; [`DnasimError::Degraded`] if a worker
    /// panics.
    pub fn par_map_budgeted<T, R, F>(
        &self,
        budget: &Budget,
        stage: &'static str,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, DnasimError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        budget.check(stage)?;
        let (out, admitted) = self.par_map_admitted(budget, items, f)?;
        if admitted < items.len() {
            return Err(budget.exceeded(stage));
        }
        Ok(out)
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::from_env`].
    fn default() -> ThreadPool {
        ThreadPool::from_env()
    }
}

/// The inline (single-worker) execution path. Panic semantics match the
/// threaded path: the first panicking item aborts the region with a
/// [`PoolError`].
fn map_serial<R, F>(len: usize, f: &F) -> Result<Vec<R>, PoolError>
where
    F: Fn(usize) -> R,
{
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(value) => out.push(value),
            Err(payload) => {
                return Err(PoolError {
                    panic_message: panic_message(payload),
                    completed: out.len(),
                    total: len,
                })
            }
        }
    }
    Ok(out)
}

/// The work-stealing execution path.
///
/// `0..len` is split into roughly `workers × CHUNKS_PER_WORKER` contiguous
/// chunks dealt round-robin onto per-worker deques. A worker drains its own
/// deque from the front and, when empty, steals from the back of its
/// neighbours' — back-stealing takes the chunk its owner would reach last,
/// minimising contention on the front. Results land in a shared
/// index-addressed buffer, so completion order never affects output order.
fn map_stealing<R, F>(len: usize, workers: usize, f: &F) -> Result<Vec<R>, PoolError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(1);
    let mut initial: Vec<VecDeque<Range<usize>>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut start = 0usize;
    let mut dealt = 0usize;
    while start < len {
        let end = (start + chunk).min(len);
        initial[dealt % workers].push_back(start..end);
        dealt += 1;
        start = end;
    }
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        initial.into_iter().map(Mutex::new).collect();

    let results: Mutex<Vec<Option<R>>> = {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        Mutex::new(slots)
    };
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let failure = &failure;
            let abort = &abort;
            scope.spawn(move || {
                while !abort.load(Ordering::Relaxed) {
                    let Some(range) = next_range(queues, me) else {
                        break;
                    };
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(range.len());
                    for i in range {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(value) => local.push((i, value)),
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                let mut first = lock_unpoisoned(failure);
                                if first.is_none() {
                                    *first = Some(panic_message(payload));
                                }
                                break;
                            }
                        }
                    }
                    let mut slots = lock_unpoisoned(results);
                    for (i, value) in local {
                        slots[i] = Some(value);
                    }
                }
            });
        }
    });

    if let Some(message) = lock_unpoisoned(&failure).take() {
        let completed = lock_unpoisoned(&results)
            .iter()
            .filter(|slot| slot.is_some())
            .count();
        return Err(PoolError {
            panic_message: message,
            completed,
            total: len,
        });
    }
    let slots = match results.into_inner() {
        Ok(slots) => slots,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut out = Vec::with_capacity(len);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(value) => out.push(value),
            // Unreachable: a missing slot implies an abort, which implies a
            // recorded failure handled above. Kept as a typed error so the
            // library stays panic-free even if the invariant breaks.
            None => {
                return Err(PoolError {
                    panic_message: format!("item {i} was never executed"),
                    completed: out.len(),
                    total: len,
                })
            }
        }
    }
    Ok(out)
}

/// Pops the next chunk for worker `me`: own deque front first, then steal
/// from the back of the nearest non-empty neighbour.
fn next_range(
    queues: &[Mutex<VecDeque<Range<usize>>>],
    me: usize,
) -> Option<Range<usize>> {
    if let Some(range) = lock_unpoisoned(&queues[me]).pop_front() {
        return Some(range);
    }
    let workers = queues.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(range) = lock_unpoisoned(&queues[victim]).pop_back() {
            return Some(range);
        }
    }
    None
}

/// Forks a deterministic RNG for item `index` of the stream rooted at
/// `seed` — the free-function form of the seeding discipline for callers
/// that do not hold a [`SeedSequence`].
pub fn item_rng(seed: u64, index: u64) -> SimRng {
    SeedSequence::new(seed).fork_rng(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::Rng;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_matches_serial_iteration() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ThreadPool::new(threads)
                .par_map_indexed(&items, |_, &x| x * x)
                .expect("no panics");
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(pool.par_map_indexed(&empty, |_, &x| x).expect("ok"), Vec::<u32>::new());
        assert_eq!(pool.par_map_indexed(&[7u32], |i, &x| x + i as u32).expect("ok"), vec![7]);
    }

    #[test]
    fn for_each_runs_every_item_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        ThreadPool::new(6)
            .par_for_each_indexed(&counters, |_, c| {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .expect("no panics");
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        use dnasim_core::rng::RngExt;
        let seq = SeedSequence::new(0xF0CA);
        let items: Vec<u32> = (0..64).collect();
        let draw = |_: usize, _: &u32, rng: &mut SimRng| rng.random::<u64>();
        let reference = ThreadPool::serial().par_map_seeded(&seq, &items, draw).expect("ok");
        for threads in [2, 4, 8] {
            let got = ThreadPool::new(threads).par_map_seeded(&seq, &items, draw).expect("ok");
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            let err = ThreadPool::new(threads)
                .par_map_indexed(&items, |_, &x| {
                    assert!(x != 41, "injected failure at {x}");
                    x
                })
                .expect_err("the panic must surface");
            assert!(err.panic_message.contains("injected failure"), "{err}");
            assert!(err.completed < err.total);
            assert!(matches!(
                DnasimError::from(err),
                DnasimError::Degraded { budget: 0, .. }
            ));
        }
        std::panic::set_hook(previous);
    }

    #[test]
    fn admitted_map_runs_exactly_the_budget_prefix() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 4] {
            let budget = Budget::limited(20);
            let (out, admitted) = ThreadPool::new(threads)
                .par_map_admitted(&budget, &items, |_, &x| x * 2)
                .expect("no panics");
            assert_eq!(admitted, 20, "threads = {threads}");
            assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<u64>>());
            assert_eq!(budget.spent(), 20);
        }
    }

    #[test]
    fn seeded_admitted_prefix_matches_unbudgeted_run() {
        use dnasim_core::rng::RngExt;
        let seq = SeedSequence::new(0xBEEF);
        let items: Vec<u32> = (0..32).collect();
        let draw = |_: usize, _: &u32, rng: &mut SimRng| rng.random::<u64>();
        let full = ThreadPool::serial().par_map_seeded(&seq, &items, draw).expect("ok");
        for threads in [1, 2, 4] {
            let budget = Budget::limited(11);
            let (prefix, admitted) = ThreadPool::new(threads)
                .par_map_seeded_admitted(&budget, &seq, &items, draw)
                .expect("ok");
            assert_eq!(admitted, 11);
            assert_eq!(prefix, full[..11], "threads = {threads}");
        }
    }

    #[test]
    fn budgeted_map_is_all_or_typed_error() {
        let items: Vec<u32> = (0..16).collect();
        let pool = ThreadPool::new(2);
        let ok = pool
            .par_map_budgeted(&Budget::limited(16), "stage", &items, |_, &x| x + 1)
            .expect("budget covers the input");
        assert_eq!(ok.len(), 16);
        let err = pool
            .par_map_budgeted(&Budget::limited(15), "stage", &items, |_, &x| x + 1)
            .expect_err("one unit short");
        assert!(matches!(err, DnasimError::DeadlineExceeded { spent: 15, limit: 15, .. }));
        let cancelled = Budget::unlimited();
        cancelled.token().cancel();
        let err = pool
            .par_map_budgeted(&cancelled, "stage", &items, |_, &x| x + 1)
            .expect_err("cancelled budgets refuse work");
        assert!(matches!(err, DnasimError::DeadlineExceeded { .. }));
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn item_rng_matches_fork_discipline() {
        let mut a = item_rng(5, 9);
        let mut b = SeedSequence::new(5).fork_rng(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn from_env_prefers_variable() {
        // Serialise against other env-reading tests by using a scoped var
        // name check only — set/remove happens in this one test.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(ThreadPool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(ThreadPool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(ThreadPool::from_env().threads() >= 1);
    }
}
