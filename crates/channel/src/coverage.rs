//! Sequencing-coverage models: how many noisy reads each reference strand
//! receives.
//!
//! Real coverage is far from constant — Illumina read counts per strand are
//! approximately negative-binomially distributed, and the paper's Nanopore
//! dataset spans coverages 0–164 around a mean of ≈27. The evaluation
//! protocols also need *fixed* coverage (first-N-reads) and *custom*
//! coverage (mirror a real dataset cluster-by-cluster).

use dnasim_core::rng::SimRng;
use dnasim_core::rng::RngExt;

/// A model for drawing per-cluster sequencing coverage.
///
/// # Examples
///
/// ```
/// use dnasim_channel::CoverageModel;
/// use dnasim_core::rng::seeded;
///
/// let mut rng = seeded(3);
/// let model = CoverageModel::Fixed(5);
/// assert_eq!(model.sample(0, &mut rng), 5);
///
/// let nb = CoverageModel::negative_binomial(26.97, 4.0);
/// let mean: f64 = (0..2000).map(|i| nb.sample(i, &mut rng) as f64).sum::<f64>() / 2000.0;
/// assert!((mean - 26.97).abs() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CoverageModel {
    /// Every cluster gets exactly `n` reads.
    Fixed(usize),
    /// Cluster `i` gets `coverages[i]` reads (clamped to the last entry
    /// beyond the end). This is the "custom coverage" protocol that mirrors
    /// a real dataset.
    Custom(Vec<usize>),
    /// Negative-binomial coverage — the empirical distribution of reads per
    /// strand (Heckel et al.). Parameterised by dispersion `r` and success
    /// probability `p`; mean is `r·(1−p)/p`.
    NegativeBinomial {
        /// Dispersion (number of failures); larger means closer to Poisson.
        r: f64,
        /// Success probability in `(0, 1)`.
        p: f64,
    },
    /// Normal coverage, rounded and clamped at 0 (Bornholt et al. observed
    /// an approximately normal distribution).
    Normal {
        /// Mean coverage.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Poisson coverage (the classical uniform-amplification assumption).
    Poisson {
        /// Mean coverage (λ).
        lambda: f64,
    },
}

impl CoverageModel {
    /// Negative-binomial model with the given `mean` and dispersion `r`.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 0` or `r <= 0`.
    pub fn negative_binomial(mean: f64, r: f64) -> CoverageModel {
        assert!(mean >= 0.0, "mean coverage must be non-negative");
        assert!(r > 0.0, "dispersion must be positive");
        let p = r / (r + mean);
        CoverageModel::NegativeBinomial { r, p }
    }

    /// Draws the coverage for cluster `index`.
    pub fn sample(&self, index: usize, rng: &mut SimRng) -> usize {
        match self {
            CoverageModel::Fixed(n) => *n,
            CoverageModel::Custom(v) => {
                if v.is_empty() {
                    0
                } else {
                    v[index.min(v.len() - 1)]
                }
            }
            CoverageModel::NegativeBinomial { r, p } => {
                // Gamma–Poisson mixture: λ ~ Gamma(r, (1−p)/p), N ~ Poisson(λ).
                let scale = (1.0 - p) / p;
                let lambda = sample_gamma(*r, rng) * scale;
                sample_poisson(lambda, rng)
            }
            CoverageModel::Normal { mean, std_dev } => {
                let z = sample_standard_normal(rng);
                (mean + std_dev * z).round().max(0.0) as usize
            }
            CoverageModel::Poisson { lambda } => sample_poisson(*lambda, rng),
        }
    }

    /// The model's mean coverage, where defined in closed form.
    pub fn mean(&self) -> f64 {
        match self {
            CoverageModel::Fixed(n) => *n as f64,
            CoverageModel::Custom(v) => {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<usize>() as f64 / v.len() as f64
                }
            }
            CoverageModel::NegativeBinomial { r, p } => r * (1.0 - p) / p,
            CoverageModel::Normal { mean, .. } => *mean,
            CoverageModel::Poisson { lambda } => *lambda,
        }
    }
}

/// Standard normal via Box–Muller.
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang, with the boost trick for
/// `shape < 1`.
fn sample_gamma(shape: f64, rng: &mut SimRng) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) · U^{1/a}
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Poisson sampling: Knuth's product method for small λ, normal
/// approximation with continuity correction for large λ.
fn sample_poisson(lambda: f64, rng: &mut SimRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let threshold = (-lambda).exp();
        let mut k = 0usize;
        let mut product: f64 = rng.random();
        while product > threshold {
            k += 1;
            product *= rng.random::<f64>();
        }
        k
    } else {
        let z = sample_standard_normal(rng);
        (lambda + lambda.sqrt() * z).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn fixed_is_constant() {
        let mut rng = seeded(1);
        let m = CoverageModel::Fixed(7);
        for i in 0..10 {
            assert_eq!(m.sample(i, &mut rng), 7);
        }
        assert_eq!(m.mean(), 7.0);
    }

    #[test]
    fn custom_indexes_per_cluster() {
        let mut rng = seeded(2);
        let m = CoverageModel::Custom(vec![3, 0, 9]);
        assert_eq!(m.sample(0, &mut rng), 3);
        assert_eq!(m.sample(1, &mut rng), 0);
        assert_eq!(m.sample(2, &mut rng), 9);
        // Beyond the end clamps to the last entry.
        assert_eq!(m.sample(99, &mut rng), 9);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn custom_empty_is_zero() {
        let mut rng = seeded(3);
        let m = CoverageModel::Custom(Vec::new());
        assert_eq!(m.sample(0, &mut rng), 0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn negative_binomial_mean_and_spread() {
        let mut rng = seeded(4);
        let m = CoverageModel::negative_binomial(27.0, 4.0);
        assert!((m.mean() - 27.0).abs() < 1e-9);
        let samples: Vec<usize> = (0..5000).map(|i| m.sample(i, &mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 27.0).abs() < 1.5, "empirical mean {mean}");
        // Overdispersed: variance should exceed the mean (Poisson would equal it).
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!(var > 1.5 * mean, "variance {var} vs mean {mean}");
        // Wide range like the real dataset (0 to >100).
        assert!(samples.iter().any(|&x| x < 5));
        assert!(samples.iter().any(|&x| x > 60));
    }

    #[test]
    fn normal_clamps_at_zero() {
        let mut rng = seeded(5);
        let m = CoverageModel::Normal {
            mean: 1.0,
            std_dev: 5.0,
        };
        for i in 0..200 {
            let _ = m.sample(i, &mut rng); // must not panic / underflow
        }
    }

    #[test]
    fn normal_empirical_mean() {
        let mut rng = seeded(6);
        let m = CoverageModel::Normal {
            mean: 26.0,
            std_dev: 5.0,
        };
        let mean: f64 = (0..4000).map(|i| m.sample(i, &mut rng) as f64).sum::<f64>() / 4000.0;
        assert!((mean - 26.0).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut rng = seeded(7);
        for lambda in [0.5, 5.0, 80.0] {
            let m = CoverageModel::Poisson { lambda };
            let mean: f64 =
                (0..4000).map(|i| m.sample(i, &mut rng) as f64).sum::<f64>() / 4000.0;
            assert!(
                (mean - lambda).abs() < lambda.sqrt().max(0.2),
                "lambda {lambda}: empirical mean {mean}"
            );
        }
        assert_eq!(
            CoverageModel::Poisson { lambda: 0.0 }.sample(0, &mut rng),
            0
        );
    }

    #[test]
    #[should_panic(expected = "dispersion must be positive")]
    fn negative_binomial_rejects_bad_dispersion() {
        let _ = CoverageModel::negative_binomial(5.0, 0.0);
    }

    #[test]
    fn gamma_sampler_is_positive_and_near_mean() {
        let mut rng = seeded(8);
        for shape in [0.5, 1.0, 4.0, 20.0] {
            let mean: f64 = (0..4000).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / 4000.0;
            assert!(
                (mean - shape).abs() < 0.15 * shape + 0.1,
                "shape {shape}: empirical mean {mean}"
            );
        }
    }
}
