//! Spatial (positional) error distributions.
//!
//! The paper's central insight is that *where* errors fall within a strand
//! is a first-class channel parameter: real Nanopore data concentrates
//! errors at the terminal positions (with the strand end roughly twice as
//! error-prone as the start), and reconstruction algorithms respond very
//! differently to different shapes. A [`SpatialDistribution`] produces
//! per-position multipliers with mean 1.0, so changing the shape never
//! changes the aggregate error rate — exactly the controlled comparison the
//! sensitivity analysis (§3.4) requires.

use std::fmt;

/// A shape for distributing a fixed aggregate error budget over strand
/// positions.
///
/// # Examples
///
/// ```
/// use dnasim_channel::SpatialDistribution;
///
/// let m = SpatialDistribution::AShaped.multipliers(101);
/// // Peak in the middle, mean 1.0.
/// assert!(m[50] > m[0]);
/// let mean = m.iter().sum::<f64>() / m.len() as f64;
/// assert!((mean - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialDistribution {
    /// Every position equally error-prone (Heckel et al. / DNASimulator
    /// assumption).
    Uniform,
    /// Errors inflated at the first and last positions of the strand, with
    /// the end more affected than the start — the profile measured on real
    /// Nanopore data (Fig. 3.2b).
    TerminalSkew(TerminalSkew),
    /// Triangular peak in the middle of the strand (the paper's A-shaped
    /// curve: triangular with `a = 0`, `b = 2·mean`).
    AShaped,
    /// Inverted triangle: error-prone ends, quiet middle (V-shaped).
    VShaped,
    /// Arbitrary per-position weights (normalised to mean 1.0 over the
    /// strand; cycled/clamped if shorter than the strand).
    Custom(Vec<f64>),
}

/// Parameters for [`SpatialDistribution::TerminalSkew`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TerminalSkew {
    /// How many leading positions are inflated (paper: 2 — positions 0, 1).
    pub head_positions: usize,
    /// Multiplier applied to the leading positions (relative to interior).
    pub head_multiplier: f64,
    /// How many trailing positions are inflated (paper: 1 — the last).
    pub tail_positions: usize,
    /// Multiplier applied to the trailing positions; the paper observes the
    /// strand end carries roughly twice the noise of the start.
    pub tail_multiplier: f64,
}

impl Default for TerminalSkew {
    /// The Nanopore-measured defaults: positions 0–1 at 4× and the final
    /// position at 8× the interior error rate.
    fn default() -> TerminalSkew {
        TerminalSkew {
            head_positions: 2,
            head_multiplier: 4.0,
            tail_positions: 1,
            tail_multiplier: 8.0,
        }
    }
}

impl SpatialDistribution {
    /// The Nanopore terminal-skew preset (see [`TerminalSkew::default`]).
    pub fn nanopore_terminal() -> SpatialDistribution {
        SpatialDistribution::TerminalSkew(TerminalSkew::default())
    }

    /// Produces the per-position multipliers for a strand of length `len`,
    /// normalised to mean 1.0 (empty for `len == 0`).
    pub fn multipliers(&self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        let raw: Vec<f64> = match self {
            SpatialDistribution::Uniform => vec![1.0; len],
            SpatialDistribution::TerminalSkew(skew) => {
                let mut v = vec![1.0; len];
                for m in v.iter_mut().take(skew.head_positions.min(len)) {
                    *m = skew.head_multiplier;
                }
                let tail_start = len.saturating_sub(skew.tail_positions);
                for m in v.iter_mut().skip(tail_start) {
                    *m = skew.tail_multiplier;
                }
                v
            }
            SpatialDistribution::AShaped => triangle(len, false),
            SpatialDistribution::VShaped => triangle(len, true),
            SpatialDistribution::Custom(weights) => {
                if weights.is_empty() {
                    vec![1.0; len]
                } else {
                    (0..len)
                        .map(|i| weights[i * weights.len() / len].max(0.0))
                        .collect()
                }
            }
        };
        normalize_mean_one(raw)
    }
}

impl fmt::Display for SpatialDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialDistribution::Uniform => f.write_str("uniform"),
            SpatialDistribution::TerminalSkew(_) => f.write_str("terminal-skew"),
            SpatialDistribution::AShaped => f.write_str("A-shaped"),
            SpatialDistribution::VShaped => f.write_str("V-shaped"),
            SpatialDistribution::Custom(_) => f.write_str("custom"),
        }
    }
}

/// Triangular (or inverted-triangular) weights over `len` positions,
/// peaking (or dipping) exactly at the middle. The triangular density with
/// support `[0, 2p̄]` and mode at `p̄` corresponds to weights rising linearly
/// from 0 at the ends to 2 at the centre.
fn triangle(len: usize, inverted: bool) -> Vec<f64> {
    let n = len as f64;
    (0..len)
        .map(|i| {
            // Relative position in [0, 1], centre = 0.5.
            let x = if len == 1 { 0.5 } else { i as f64 / (n - 1.0) };
            let tri = 2.0 * (1.0 - (2.0 * x - 1.0).abs()); // 0 at ends, 2 at centre
            if inverted {
                2.0 - tri
            } else {
                tri
            }
        })
        .collect()
}

fn normalize_mean_one(raw: Vec<f64>) -> Vec<f64> {
    let mean = raw.iter().sum::<f64>() / raw.len() as f64;
    if mean <= 0.0 {
        return vec![1.0; raw.len()];
    }
    raw.into_iter().map(|v| v / mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn all_shapes_have_mean_one() {
        let shapes = [
            SpatialDistribution::Uniform,
            SpatialDistribution::nanopore_terminal(),
            SpatialDistribution::AShaped,
            SpatialDistribution::VShaped,
            SpatialDistribution::Custom(vec![1.0, 5.0, 1.0]),
        ];
        for shape in shapes {
            for len in [1, 2, 10, 110, 111] {
                let m = shape.multipliers(len);
                assert_eq!(m.len(), len);
                assert!(
                    (mean(&m) - 1.0).abs() < 1e-9,
                    "{shape} at len {len}: mean {}",
                    mean(&m)
                );
                assert!(m.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn uniform_is_flat() {
        let m = SpatialDistribution::Uniform.multipliers(50);
        assert!(m.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn terminal_skew_inflates_ends() {
        let m = SpatialDistribution::nanopore_terminal().multipliers(110);
        assert!(m[0] > m[50]);
        assert!(m[1] > m[50]);
        // End roughly twice the start, as measured on Nanopore data.
        assert!(m[109] > 1.5 * m[0]);
        // Interior is flat.
        assert!((m[10] - m[80]).abs() < 1e-12);
    }

    #[test]
    fn a_shape_peaks_in_middle() {
        let m = SpatialDistribution::AShaped.multipliers(101);
        assert!(m[50] > m[0]);
        assert!(m[50] > m[100]);
        // Monotone toward the peak on each side.
        assert!(m[25] < m[50] && m[25] > m[0]);
    }

    #[test]
    fn v_shape_dips_in_middle() {
        let m = SpatialDistribution::VShaped.multipliers(101);
        assert!(m[50] < m[0]);
        assert!(m[50] < m[100]);
    }

    #[test]
    fn a_and_v_are_complementary() {
        let a = SpatialDistribution::AShaped.multipliers(101);
        let v = SpatialDistribution::VShaped.multipliers(101);
        // Each shape normalises its own discrete mean, so complementarity
        // is approximate: a + v ≈ 2 within discretisation error.
        for i in 0..101 {
            assert!((a[i] + v[i] - 2.0).abs() < 0.05, "position {i}: {} + {}", a[i], v[i]);
        }
    }

    #[test]
    fn custom_weights_stretch_over_strand() {
        let m = SpatialDistribution::Custom(vec![0.0, 2.0]).multipliers(10);
        // First half low, second half high.
        assert!(m[0] < 1e-12);
        assert!(m[9] > 1.0);
    }

    #[test]
    fn custom_empty_falls_back_to_uniform() {
        let m = SpatialDistribution::Custom(Vec::new()).multipliers(5);
        assert!(m.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn zero_length_is_empty() {
        assert!(SpatialDistribution::Uniform.multipliers(0).is_empty());
    }

    #[test]
    fn single_position_is_one() {
        for shape in [
            SpatialDistribution::Uniform,
            SpatialDistribution::AShaped,
            SpatialDistribution::VShaped,
        ] {
            assert_eq!(shape.multipliers(1), vec![1.0]);
        }
    }
}
