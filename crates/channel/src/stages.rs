//! Composable multi-stage channel simulation.
//!
//! The paper's simulator (like DNASimulator) collapses all noise sources
//! into one aggregate injection pass, and its §4.2 names this the key
//! limitation: an ideal simulator should model synthesis, storage, PCR and
//! sequencing *separately and composably*. This module provides that
//! substrate: a [`MoleculePool`] of weighted molecules flows through
//! [`SynthesisStage`] → [`DecayStage`] → [`PcrStage`] → [`SequencingStage`],
//! each stage transforming it with its own characteristic noise
//! (deletion-dominated synthesis, amplification bias, substitution-only
//! PCR, IDS-heavy sequencing).

use dnasim_core::rng::SimRng;
use dnasim_core::{Cluster, Dataset, Strand};
use dnasim_core::rng::RngExt;

use crate::baseline::sample_weighted_index;
use crate::model::ErrorModel;

/// One physical molecule species in the pool: a (possibly corrupted)
/// sequence, which reference it originated from, and its abundance.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    /// Index of the reference strand this molecule descends from.
    pub origin: usize,
    /// The molecule's actual sequence.
    pub strand: Strand,
    /// Abundance (expected copy count); fractional because amplification
    /// factors are continuous.
    pub abundance: f64,
}

/// A pool of molecules flowing through the storage pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MoleculePool {
    molecules: Vec<Molecule>,
}

impl MoleculePool {
    /// Creates an empty pool.
    pub fn new() -> MoleculePool {
        MoleculePool::default()
    }

    /// The molecules in the pool.
    pub fn molecules(&self) -> &[Molecule] {
        &self.molecules
    }

    /// Number of distinct molecule species.
    pub fn species_count(&self) -> usize {
        self.molecules.len()
    }

    /// Total abundance across species.
    pub fn total_abundance(&self) -> f64 {
        self.molecules.iter().map(|m| m.abundance).sum()
    }

    /// Adds a molecule species.
    pub fn push(&mut self, molecule: Molecule) {
        self.molecules.push(molecule);
    }
}

/// Synthesis: writes reference strands into physical molecules.
///
/// Synthesis errors are dominated by deletions (Heckel et al.); each
/// reference yields several distinct synthesized *variants*, and a strand
/// can drop out entirely.
#[derive(Debug)]
pub struct SynthesisStage<M> {
    /// Error model applied per synthesized variant.
    pub error_model: M,
    /// Number of distinct variants synthesized per reference.
    pub variants_per_reference: usize,
    /// Probability a reference fails to synthesize at all.
    pub dropout_probability: f64,
    /// Mean abundance per variant.
    pub mean_abundance: f64,
}

impl<M: ErrorModel> SynthesisStage<M> {
    /// Runs synthesis over the references.
    pub fn run(&self, references: &[Strand], rng: &mut SimRng) -> MoleculePool {
        let mut pool = MoleculePool::new();
        for (origin, reference) in references.iter().enumerate() {
            self.run_group_into(origin, reference, rng, &mut pool);
        }
        pool
    }

    /// Synthesises one reference — one *strand group* — in isolation.
    ///
    /// All of a reference's synthesis draws (dropout, per-variant
    /// corruption, abundance) are already strictly sequential and touch
    /// no cross-reference state, so the stage shards cleanly: driving
    /// `run_group` per reference with an RNG forked from the group index
    /// generates molecule pools window-by-window, with peak residency one
    /// group instead of the whole archive. [`run`] is exactly this helper
    /// folded over the references with a single shared RNG.
    ///
    /// [`run`]: SynthesisStage::run
    pub fn run_group(&self, origin: usize, reference: &Strand, rng: &mut SimRng) -> MoleculePool {
        let mut pool = MoleculePool::new();
        self.run_group_into(origin, reference, rng, &mut pool);
        pool
    }

    fn run_group_into(
        &self,
        origin: usize,
        reference: &Strand,
        rng: &mut SimRng,
        pool: &mut MoleculePool,
    ) {
        if rng.random::<f64>() < self.dropout_probability {
            return;
        }
        for _ in 0..self.variants_per_reference {
            let strand = self.error_model.corrupt(reference, rng);
            // Gamma(4)-distributed abundance around the mean: skewed like
            // real synthesis yields, but without the starvation tail a
            // pure exponential would give individual variants.
            let abundance = self.mean_abundance / 4.0
                * -(0..4)
                    .map(|_| rng.random::<f64>().max(f64::MIN_POSITIVE).ln())
                    .sum::<f64>();
            pool.push(Molecule {
                origin,
                strand,
                abundance,
            });
        }
    }
}

/// Storage decay: molecules degrade over time.
///
/// Abundance halves every `half_life_years`; badly-degraded species drop
/// out of the pool entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayStage {
    /// Storage duration in years.
    pub years: f64,
    /// Molecular half-life in years (silica-encapsulated DNA: centuries).
    pub half_life_years: f64,
    /// Minimum abundance below which a species is considered lost.
    pub loss_threshold: f64,
}

impl DecayStage {
    /// Applies decay to the pool.
    pub fn run(&self, pool: &MoleculePool) -> MoleculePool {
        let factor = 0.5f64.powf(self.years / self.half_life_years);
        let molecules = pool
            .molecules()
            .iter()
            .filter_map(|m| {
                let abundance = m.abundance * factor;
                (abundance >= self.loss_threshold).then(|| Molecule {
                    origin: m.origin,
                    strand: m.strand.clone(),
                    abundance,
                })
            })
            .collect();
        MoleculePool { molecules }
    }
}

/// PCR amplification: multiplies abundance with per-molecule bias, and
/// occasionally introduces substitution variants.
///
/// Heckel et al. show PCR prefers some sequences over others, distorting
/// the copy-number distribution; the lognormal per-species bias reproduces
/// that distortion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcrStage {
    /// Number of PCR cycles.
    pub cycles: u32,
    /// Per-cycle amplification efficiency in `[0, 1]`.
    pub efficiency: f64,
    /// Standard deviation of the lognormal per-species efficiency bias.
    pub bias_sigma: f64,
    /// Per-base, per-run probability of a polymerase substitution creating
    /// a variant species.
    pub substitution_rate: f64,
}

impl PcrStage {
    /// Runs PCR over the pool.
    pub fn run(&self, pool: &MoleculePool, rng: &mut SimRng) -> MoleculePool {
        let mut out = MoleculePool::new();
        for m in pool.molecules() {
            // Per-species efficiency bias (lognormal around the nominal).
            let z = {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            let eff = (self.efficiency * (self.bias_sigma * z).exp()).clamp(0.0, 1.0);
            let gain = (1.0 + eff).powi(self.cycles as i32);
            let mut abundance = m.abundance * gain;

            // Polymerase errors spawn substitution variants carrying a
            // fraction of the amplified mass.
            let expected_variants = self.substitution_rate * m.strand.len() as f64;
            if expected_variants > 0.0 && rng.random::<f64>() < expected_variants.min(1.0) {
                let mut variant = m.strand.clone();
                if !variant.is_empty() {
                    let pos = rng.random_range(0..variant.len());
                    let mut bases = variant.into_bases();
                    bases[pos] = bases[pos].random_other(rng);
                    variant = Strand::from_bases(bases);
                }
                let share = abundance * 0.1;
                abundance -= share;
                out.push(Molecule {
                    origin: m.origin,
                    strand: variant,
                    abundance: share,
                });
            }
            out.push(Molecule {
                origin: m.origin,
                strand: m.strand.clone(),
                abundance,
            });
        }
        out
    }
}

/// Sequencing: samples reads from the pool (proportional to abundance) and
/// corrupts each read independently.
#[derive(Debug)]
pub struct SequencingStage<M> {
    /// Error model applied per read.
    pub error_model: M,
    /// Total number of reads to draw.
    pub total_reads: usize,
}

impl<M: ErrorModel> SequencingStage<M> {
    /// Sequences the pool, grouping reads by their originating reference
    /// (perfect clustering). `reference_count` fixes the number of clusters
    /// so that unsequenced references appear as erasures.
    pub fn run(
        &self,
        pool: &MoleculePool,
        references: &[Strand],
        rng: &mut SimRng,
    ) -> Dataset {
        let weights: Vec<f64> = pool.molecules().iter().map(|m| m.abundance).collect();
        let mut reads_per_reference: Vec<Vec<Strand>> =
            references.iter().map(|_| Vec::new()).collect();
        if !pool.molecules().is_empty() {
            for _ in 0..self.total_reads {
                let idx = sample_weighted_index(&weights, rng);
                let molecule = &pool.molecules()[idx];
                let read = self.error_model.corrupt(&molecule.strand, rng);
                if let Some(bucket) = reads_per_reference.get_mut(molecule.origin) {
                    bucket.push(read);
                }
            }
        }
        references
            .iter()
            .zip(reads_per_reference)
            .map(|(reference, reads)| Cluster::new(reference.clone(), reads))
            .collect()
    }

    /// Splits the stage's read budget across strand groups proportionally
    /// to their total abundance, by drawing `total_reads` categorical
    /// samples over `group_weights` — the same draw the whole-pool sampler
    /// makes, collapsed to group granularity.
    ///
    /// This is the serial "pass 0" of the sharded sequencer: once every
    /// group knows its read count, the groups sample independently with
    /// forked RNGs ([`sample_group`]) and never need the whole molecule
    /// pool resident. The counts always sum to `total_reads` unless every
    /// weight is zero or non-finite (an empty/extinct pool), which yields
    /// all-zero counts — the sharded analogue of the whole-pool sampler
    /// sequencing nothing from an empty pool.
    ///
    /// [`sample_group`]: SequencingStage::sample_group
    pub fn allocate_reads(&self, group_weights: &[f64], rng: &mut SimRng) -> Vec<usize> {
        let mut counts = vec![0usize; group_weights.len()];
        let total: f64 = group_weights
            .iter()
            .filter(|w| w.is_finite() && **w > 0.0)
            .sum();
        if total <= 0.0 {
            return counts;
        }
        for _ in 0..self.total_reads {
            counts[sample_weighted_index(group_weights, rng)] += 1;
        }
        counts
    }

    /// Sequences `count` reads from one strand group's molecules,
    /// weighted by abundance — the within-group half of the sharded
    /// sampler (see [`allocate_reads`]). An empty group yields no reads.
    ///
    /// [`allocate_reads`]: SequencingStage::allocate_reads
    pub fn sample_group(&self, pool: &MoleculePool, count: usize, rng: &mut SimRng) -> Vec<Strand> {
        let mut reads = Vec::with_capacity(count);
        if pool.molecules().is_empty() {
            return reads;
        }
        let weights: Vec<f64> = pool.molecules().iter().map(|m| m.abundance).collect();
        for _ in 0..count {
            let idx = sample_weighted_index(&weights, rng);
            reads.push(self.error_model.corrupt(&pool.molecules()[idx].strand, rng));
        }
        reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::NaiveModel;
    use crate::model::IdentityModel;
    use dnasim_core::rng::seeded;

    fn references(n: usize, len: usize, seed: u64) -> Vec<Strand> {
        let mut rng = seeded(seed);
        (0..n).map(|_| Strand::random(len, &mut rng)).collect()
    }

    #[test]
    fn synthesis_produces_variants() {
        let stage = SynthesisStage {
            error_model: IdentityModel,
            variants_per_reference: 3,
            dropout_probability: 0.0,
            mean_abundance: 10.0,
        };
        let refs = references(4, 30, 1);
        let mut rng = seeded(2);
        let pool = stage.run(&refs, &mut rng);
        assert_eq!(pool.species_count(), 12);
        assert!(pool.total_abundance() > 0.0);
    }

    #[test]
    fn synthesis_dropout_loses_references() {
        let stage = SynthesisStage {
            error_model: IdentityModel,
            variants_per_reference: 1,
            dropout_probability: 1.0,
            mean_abundance: 10.0,
        };
        let refs = references(5, 30, 3);
        let mut rng = seeded(4);
        assert_eq!(stage.run(&refs, &mut rng).species_count(), 0);
    }

    #[test]
    fn decay_halves_abundance() {
        let mut pool = MoleculePool::new();
        pool.push(Molecule {
            origin: 0,
            strand: "ACGT".parse().unwrap(),
            abundance: 8.0,
        });
        let stage = DecayStage {
            years: 100.0,
            half_life_years: 100.0,
            loss_threshold: 0.0,
        };
        let decayed = stage.run(&pool);
        assert!((decayed.molecules()[0].abundance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn decay_drops_below_threshold() {
        let mut pool = MoleculePool::new();
        pool.push(Molecule {
            origin: 0,
            strand: "ACGT".parse().unwrap(),
            abundance: 1.0,
        });
        let stage = DecayStage {
            years: 1000.0,
            half_life_years: 100.0,
            loss_threshold: 0.01,
        };
        assert_eq!(stage.run(&pool).species_count(), 0);
    }

    #[test]
    fn pcr_amplifies() {
        let mut pool = MoleculePool::new();
        pool.push(Molecule {
            origin: 0,
            strand: "ACGTACGT".parse().unwrap(),
            abundance: 1.0,
        });
        let stage = PcrStage {
            cycles: 10,
            efficiency: 0.9,
            bias_sigma: 0.0,
            substitution_rate: 0.0,
        };
        let mut rng = seeded(5);
        let amplified = stage.run(&pool, &mut rng);
        assert!(amplified.total_abundance() > 100.0);
    }

    #[test]
    fn pcr_bias_distorts_copy_numbers() {
        let mut pool = MoleculePool::new();
        for i in 0..50 {
            pool.push(Molecule {
                origin: i,
                strand: "ACGTACGTACGT".parse().unwrap(),
                abundance: 1.0,
            });
        }
        let stage = PcrStage {
            cycles: 12,
            efficiency: 0.8,
            bias_sigma: 0.08,
            substitution_rate: 0.0,
        };
        let mut rng = seeded(6);
        let amplified = stage.run(&pool, &mut rng);
        let abundances: Vec<f64> = amplified.molecules().iter().map(|m| m.abundance).collect();
        let max = abundances.iter().cloned().fold(f64::MIN, f64::max);
        let min = abundances.iter().cloned().fold(f64::MAX, f64::min);
        // Bias compounds over cycles: spread should be clearly visible.
        assert!(max / min > 1.5, "max/min = {}", max / min);
    }

    #[test]
    fn pcr_substitutions_create_variants() {
        let mut pool = MoleculePool::new();
        pool.push(Molecule {
            origin: 0,
            strand: Strand::random(100, &mut seeded(7)),
            abundance: 1.0,
        });
        let stage = PcrStage {
            cycles: 5,
            efficiency: 0.9,
            bias_sigma: 0.0,
            substitution_rate: 0.5, // very high, to force a variant
        };
        let mut rng = seeded(8);
        let amplified = stage.run(&pool, &mut rng);
        assert!(amplified.species_count() > 1);
    }

    #[test]
    fn sequencing_groups_reads_by_origin() {
        let refs = references(3, 40, 9);
        let synthesis = SynthesisStage {
            error_model: IdentityModel,
            variants_per_reference: 1,
            dropout_probability: 0.0,
            mean_abundance: 10.0,
        };
        let mut rng = seeded(10);
        let pool = synthesis.run(&refs, &mut rng);
        let sequencing = SequencingStage {
            error_model: IdentityModel,
            total_reads: 120,
        };
        let dataset = sequencing.run(&pool, &refs, &mut rng);
        assert_eq!(dataset.len(), 3);
        assert_eq!(dataset.total_reads(), 120);
        // With identity models end-to-end, every read equals its reference.
        for cluster in dataset.iter() {
            for read in cluster.reads() {
                assert_eq!(read, cluster.reference());
            }
        }
    }

    #[test]
    fn full_pipeline_composes() {
        let refs = references(5, 60, 11);
        let mut rng = seeded(12);
        let pool = SynthesisStage {
            error_model: NaiveModel::new(0.001, 0.004, 0.002),
            variants_per_reference: 2,
            dropout_probability: 0.05,
            mean_abundance: 5.0,
        }
        .run(&refs, &mut rng);
        let pool = DecayStage {
            years: 100.0,
            half_life_years: 500.0,
            loss_threshold: 1e-6,
        }
        .run(&pool);
        let pool = PcrStage {
            cycles: 10,
            efficiency: 0.85,
            bias_sigma: 0.05,
            substitution_rate: 0.0005,
        }
        .run(&pool, &mut rng);
        let dataset = SequencingStage {
            error_model: NaiveModel::with_total_rate(0.06),
            total_reads: 100,
        }
        .run(&pool, &refs, &mut rng);
        assert_eq!(dataset.len(), 5);
        assert_eq!(dataset.total_reads(), 100);
        assert!(dataset.mean_coverage() > 0.0);
    }

    #[test]
    fn sharded_synthesis_composes_to_the_whole_run() {
        // Folding run_group over the references with one shared RNG is
        // byte-identical to run(): the refactor may not change a single
        // draw.
        let stage = SynthesisStage {
            error_model: NaiveModel::with_total_rate(0.01),
            variants_per_reference: 3,
            dropout_probability: 0.1,
            mean_abundance: 8.0,
        };
        let refs = references(6, 50, 21);
        let whole = stage.run(&refs, &mut seeded(22));
        let mut rng = seeded(22);
        let mut sharded = MoleculePool::new();
        for (origin, r) in refs.iter().enumerate() {
            for m in stage.run_group(origin, r, &mut rng).molecules() {
                sharded.push(m.clone());
            }
        }
        assert_eq!(sharded, whole);
    }

    #[test]
    fn sharded_synthesis_is_deterministic_under_forked_rngs() {
        use dnasim_core::rng::SeedSequence;
        let stage = SynthesisStage {
            error_model: NaiveModel::with_total_rate(0.01),
            variants_per_reference: 2,
            dropout_probability: 0.0,
            mean_abundance: 8.0,
        };
        let refs = references(4, 40, 23);
        let seq = SeedSequence::new(77);
        let run = |seq: &SeedSequence| -> Vec<MoleculePool> {
            refs.iter()
                .enumerate()
                .map(|(g, r)| stage.run_group(g, r, &mut seq.fork_rng(g as u64)))
                .collect()
        };
        assert_eq!(run(&seq), run(&seq));
        // Each group's pool is a pure function of its own fork: dropping
        // other groups does not perturb it.
        let solo = stage.run_group(2, &refs[2], &mut seq.fork_rng(2));
        assert_eq!(run(&seq)[2], solo);
    }

    #[test]
    fn allocate_reads_sums_to_budget_and_respects_zero_weights() {
        let stage = SequencingStage {
            error_model: IdentityModel,
            total_reads: 200,
        };
        let mut rng = seeded(24);
        let counts = stage.allocate_reads(&[1.0, 0.0, 3.0, f64::NAN], &mut rng);
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert_eq!(counts[1], 0, "zero-weight group drew reads");
        assert_eq!(counts[3], 0, "non-finite-weight group drew reads");
        assert!(counts[2] > counts[0], "allocation ignored the weights");
        // Extinct pool: nothing to sequence.
        assert_eq!(
            stage.allocate_reads(&[0.0, 0.0], &mut rng),
            vec![0, 0]
        );
        assert!(stage.allocate_reads(&[], &mut rng).is_empty());
    }

    #[test]
    fn sample_group_draws_exactly_count_reads() {
        let refs = references(1, 40, 25);
        let synthesis = SynthesisStage {
            error_model: IdentityModel,
            variants_per_reference: 2,
            dropout_probability: 0.0,
            mean_abundance: 10.0,
        };
        let mut rng = seeded(26);
        let pool = synthesis.run(&refs, &mut rng);
        let stage = SequencingStage {
            error_model: IdentityModel,
            total_reads: 999, // unused by sample_group
        };
        let reads = stage.sample_group(&pool, 17, &mut rng);
        assert_eq!(reads.len(), 17);
        assert!(reads.iter().all(|r| r == &refs[0]));
        assert!(stage.sample_group(&MoleculePool::new(), 5, &mut rng).is_empty());
    }

    #[test]
    fn sequencing_empty_pool_yields_erasures() {
        let refs = references(2, 30, 13);
        let mut rng = seeded(14);
        let dataset = SequencingStage {
            error_model: IdentityModel,
            total_reads: 50,
        }
        .run(&MoleculePool::new(), &refs, &mut rng);
        assert_eq!(dataset.len(), 2);
        assert_eq!(dataset.erasure_count(), 2);
    }
}

/// A complete write→store→read channel assembled from the four stages.
///
/// This is the composable multi-stage simulation §4.2 calls for, packaged
/// as one value: configure each stage, then [`run`](StagePipeline::run)
/// maps reference strands to a clustered [`Dataset`] in a single call.
#[derive(Debug)]
pub struct StagePipeline<S, Q> {
    /// Synthesis stage (writes references into molecules).
    pub synthesis: SynthesisStage<S>,
    /// Storage decay stage.
    pub decay: DecayStage,
    /// PCR amplification stage.
    pub pcr: PcrStage,
    /// Sequencing stage (reads molecules into a dataset). The
    /// `total_reads` field is treated as reads *per reference* here and
    /// scaled by the reference count at run time.
    pub sequencing: SequencingStage<Q>,
}

impl<S: ErrorModel, Q: ErrorModel> StagePipeline<S, Q> {
    /// Runs the full pipeline over `references`.
    pub fn run(&self, references: &[Strand], rng: &mut SimRng) -> Dataset {
        let pool = self.synthesis.run(references, rng);
        let pool = self.decay.run(&pool);
        let pool = self.pcr.run(&pool, rng);
        let sequencing = SequencingStage {
            error_model: &self.sequencing.error_model,
            total_reads: self.sequencing.total_reads * references.len(),
        };
        sequencing.run(&pool, references, rng)
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use crate::baseline::NaiveModel;
    use dnasim_core::rng::seeded;

    #[test]
    fn stage_pipeline_runs_end_to_end() {
        let mut rng = seeded(41);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(60, &mut rng)).collect();
        let pipeline = StagePipeline {
            synthesis: SynthesisStage {
                error_model: NaiveModel::new(0.0002, 0.0005, 0.0003),
                variants_per_reference: 4,
                dropout_probability: 0.0,
                mean_abundance: 10.0,
            },
            decay: DecayStage {
                years: 50.0,
                half_life_years: 500.0,
                loss_threshold: 1e-9,
            },
            pcr: PcrStage {
                cycles: 10,
                efficiency: 0.85,
                bias_sigma: 0.03,
                substitution_rate: 0.0001,
            },
            sequencing: SequencingStage {
                error_model: NaiveModel::with_total_rate(0.05),
                total_reads: 8,
            },
        };
        let ds = pipeline.run(&references, &mut rng);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.total_reads(), 48);
        assert!(ds.mean_coverage() > 0.0);
    }

    #[test]
    fn stage_pipeline_is_deterministic() {
        let refs: Vec<Strand> = (0..3).map(|i| {
            let mut rng = seeded(i);
            Strand::random(40, &mut rng)
        }).collect();
        let build = || StagePipeline {
            synthesis: SynthesisStage {
                error_model: NaiveModel::with_total_rate(0.002),
                variants_per_reference: 2,
                dropout_probability: 0.0,
                mean_abundance: 5.0,
            },
            decay: DecayStage {
                years: 0.0,
                half_life_years: 100.0,
                loss_threshold: 0.0,
            },
            pcr: PcrStage {
                cycles: 5,
                efficiency: 0.9,
                bias_sigma: 0.0,
                substitution_rate: 0.0,
            },
            sequencing: SequencingStage {
                error_model: NaiveModel::with_total_rate(0.03),
                total_reads: 5,
            },
        };
        let a = build().run(&refs, &mut seeded(7));
        let b = build().run(&refs, &mut seeded(7));
        assert_eq!(a, b);
    }
}
