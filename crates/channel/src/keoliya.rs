//! The paper's layered, data-driven simulator.
//!
//! Section 3.3 refines a naive simulator by progressively adding four
//! parameter families, each learnable from real data by the profiler:
//!
//! 1. **Naive** — aggregate insertion/deletion/substitution probabilities;
//! 2. **+ Conditional probabilities & long deletions** — per-base error
//!    rates `P(kind | base)`, the substitution confusion matrix, and
//!    multi-base deletion runs;
//! 3. **+ Spatial skew** — per-position multipliers (terminal positions of
//!    real Nanopore strands are several times more error-prone);
//! 4. **+ Second-order errors** — the top-k specific errors (e.g. `T→C`,
//!    `Insert(A)`) each concentrated at its own positions.
//!
//! Every layer preserves the aggregate error rate of the layer below, so
//! accuracy differences between layers isolate the effect of the added
//! parameter — the comparison Tables 3.1 and 3.2 make.

use dnasim_core::rng::SimRng;
use dnasim_core::{Base, EditOp, ErrorKind, Strand};
use dnasim_profile::LearnedModel;
use dnasim_core::rng::RngExt;

use crate::baseline::sample_weighted_index;
use crate::model::ErrorModel;

/// Which refinement layers are active (each includes all previous ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimulatorLayer {
    /// Aggregate probabilities only.
    Naive,
    /// + per-base conditional probabilities and long deletions.
    ConditionalLongDel,
    /// + spatial (positional) error distribution.
    SpatialSkew,
    /// + second-order (base-specific) errors with their own skews.
    SecondOrder,
}

impl SimulatorLayer {
    /// All layers in refinement order — the ablation rows of Tables 3.1/3.2.
    pub const ALL: [SimulatorLayer; 4] = [
        SimulatorLayer::Naive,
        SimulatorLayer::ConditionalLongDel,
        SimulatorLayer::SpatialSkew,
        SimulatorLayer::SecondOrder,
    ];

    /// The table-row label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            SimulatorLayer::Naive => "Naive Simulator",
            SimulatorLayer::ConditionalLongDel => "+ Cond. Prob + Del",
            SimulatorLayer::SpatialSkew => "+ Spatial Skew",
            SimulatorLayer::SecondOrder => "+ 2nd-order Errors",
        }
    }
}

impl std::fmt::Display for SimulatorLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One second-order modulation entry attached to a (base, kind) class.
#[derive(Debug, Clone)]
struct SecondOrderEntry {
    /// Weight of this specific error within its class, in `[0, 1]`.
    weight: f64,
    /// Positional multipliers (mean 1.0).
    multipliers: Vec<f64>,
    /// For substitutions: the target base this entry biases toward.
    target: Option<Base>,
}

/// The layered data-driven error model (this paper's simulator).
///
/// # Examples
///
/// ```
/// use dnasim_channel::{ErrorModel, KeoliyaModel, SimulatorLayer};
/// use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
/// use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
///
/// // Learn a model from (here, tiny) clustered data, then simulate.
/// let reference: Strand = "ACGTACGTAC".parse()?;
/// let cluster = Cluster::new(reference.clone(), vec!["ACGTACGTA".parse()?]);
/// let dataset = Dataset::from_clusters(vec![cluster]);
/// let mut rng = seeded(1);
/// let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
/// let learned = LearnedModel::from_stats(&stats, 10);
///
/// let model = KeoliyaModel::new(learned, SimulatorLayer::SecondOrder);
/// let read = model.corrupt(&reference, &mut rng);
/// assert!(read.len() <= reference.len() + 2);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KeoliyaModel {
    learned: LearnedModel,
    layer: SimulatorLayer,
    /// Naive-layer per-kind rates `[sub, del, ins]`.
    naive_rates: [f64; 3],
    /// P(long run | deletion event) for the long-deletion mechanism.
    long_given_deletion: f64,
    /// `second_order[base][kind]` → modulation entries for that class.
    second_order: [[Vec<SecondOrderEntry>; 3]; 4],
    /// Whether to apply the learned homopolymer boost (an opt-in extension
    /// beyond the paper's four layers; defaults to off so the Tables
    /// 3.1/3.2 ablation stays exactly the paper's).
    use_homopolymer: bool,
}

impl KeoliyaModel {
    /// Builds the simulator at the given refinement layer from learned
    /// parameters.
    pub fn new(learned: LearnedModel, layer: SimulatorLayer) -> KeoliyaModel {
        // Global kind mix for the naive layer.
        let mut kind_totals = [0.0f64; 3];
        for rates in &learned.per_base {
            for kind in ErrorKind::ALL {
                kind_totals[kind.index()] += rates.rate(kind);
            }
        }
        let total: f64 = kind_totals.iter().sum();
        let naive_rates = if total > 0.0 {
            let aggregate = learned.aggregate_error_rate;
            [
                aggregate * kind_totals[0] / total,
                aggregate * kind_totals[1] / total,
                aggregate * kind_totals[2] / total,
            ]
        } else {
            [0.0; 3]
        };

        // Probability that a deletion event extends into a long run.
        let mean_del_rate: f64 =
            learned.per_base.iter().map(|r| r.deletion).sum::<f64>() / 4.0;
        let long_given_deletion = if mean_del_rate > 0.0 {
            (learned.long_deletion.probability / mean_del_rate).clamp(0.0, 1.0)
        } else {
            0.0
        };

        // Second-order entries grouped by (owner base, kind) class.
        let mut second_order: [[Vec<SecondOrderEntry>; 3]; 4] = Default::default();
        let class_total: f64 = learned
            .per_base
            .iter()
            .map(|r| r.total())
            .sum::<f64>();
        for so in &learned.second_order {
            let (owners, kind, target): (Vec<Base>, ErrorKind, Option<Base>) = match so.op {
                EditOp::Subst { orig, new } => (vec![orig], ErrorKind::Substitution, Some(new)),
                EditOp::Delete(b) => (vec![b], ErrorKind::Deletion, None),
                // An insertion's owner base is unrecorded: spread it over
                // all four classes.
                EditOp::Insert(_) => (Base::ALL.to_vec(), ErrorKind::Insertion, None),
                EditOp::Equal(_) => continue,
            };
            // An op spread over several owner classes splits its share.
            let op_share = so.share / owners.len() as f64;
            for owner in owners {
                let class_share = if class_total > 0.0 {
                    learned.per_base[owner.index()].rate(kind) / class_total
                } else {
                    0.0
                };
                let weight = if class_share > 0.0 {
                    (op_share / class_share).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                if weight > 0.0 {
                    second_order[owner.index()][kind.index()].push(SecondOrderEntry {
                        weight,
                        multipliers: so.positional_multipliers.clone(),
                        target,
                    });
                }
            }
        }

        KeoliyaModel {
            learned,
            layer,
            naive_rates,
            long_given_deletion,
            second_order,
            use_homopolymer: false,
        }
    }

    /// Builds the simulator after validating the learned parameters.
    ///
    /// [`new`](KeoliyaModel::new) trusts its input — appropriate for models
    /// freshly learned by the profiler. Models loaded from disk (or any
    /// other untrusted source) should come through here instead: a NaN rate
    /// would silently disable error injection, and an out-of-range rate
    /// would distort every statistic downstream.
    ///
    /// # Errors
    ///
    /// [`ModelValidationError`](dnasim_profile::ModelValidationError)
    /// naming the first out-of-domain parameter.
    pub fn try_new(
        learned: LearnedModel,
        layer: SimulatorLayer,
    ) -> Result<KeoliyaModel, dnasim_profile::ModelValidationError> {
        learned.validate()?;
        Ok(KeoliyaModel::new(learned, layer))
    }

    /// Enables the learned homopolymer modulation: positions inside runs of
    /// length ≥ 3 get the learned boost, with the rest of the strand
    /// compensated so the aggregate rate is unchanged. An extension beyond
    /// the paper's four layers (its §2.2.3 notes DNASimulator ignores
    /// homopolymers).
    pub fn with_homopolymer_modulation(mut self) -> KeoliyaModel {
        self.use_homopolymer = true;
        self
    }

    /// The active layer.
    pub fn layer(&self) -> SimulatorLayer {
        self.layer
    }

    /// The learned parameters this model was built from.
    pub fn learned(&self) -> &LearnedModel {
        &self.learned
    }

    /// The per-kind rates `[sub, del, ins]` for `base` at `position`.
    fn rates_at(&self, base: Base, position: usize) -> [f64; 3] {
        let mut rates = if self.layer >= SimulatorLayer::ConditionalLongDel {
            let r = self.learned.per_base[base.index()];
            [r.substitution, r.deletion, r.insertion]
        } else {
            self.naive_rates
        };
        if self.layer >= SimulatorLayer::SpatialSkew {
            let spatial = self.learned.spatial_multiplier(position);
            for kind in ErrorKind::ALL {
                // The second-order layer *mixes* positional distributions
                // rather than multiplying them: each specific error's
                // multipliers were learned on absolute positions and already
                // embed the overall skew, so a product would double-apply it.
                let factor = if self.layer >= SimulatorLayer::SecondOrder {
                    self.second_order_factor(base, kind, position, spatial)
                } else {
                    spatial
                };
                rates[kind.index()] *= factor;
            }
        }
        // Keep the three-way split a valid sub-distribution.
        let total: f64 = rates.iter().sum();
        if total > 0.95 {
            rates.iter_mut().for_each(|r| *r *= 0.95 / total);
        }
        rates
    }

    /// Positional modulation for a (base, kind) class at the second-order
    /// layer: a mixture `(1 − Σw)·spatial + Σ w·mult_op(pos)` of the
    /// generic spatial curve and each specific error's own positional
    /// distribution (both mean 1.0, so the aggregate rate is preserved).
    fn second_order_factor(
        &self,
        base: Base,
        kind: ErrorKind,
        position: usize,
        spatial: f64,
    ) -> f64 {
        let entries = &self.second_order[base.index()][kind.index()];
        if entries.is_empty() {
            return spatial;
        }
        let mut weight_sum = 0.0;
        let mut modulated = 0.0;
        for entry in entries {
            let m = entry
                .multipliers
                .get(position)
                .copied()
                .unwrap_or(1.0);
            weight_sum += entry.weight;
            modulated += entry.weight * m;
        }
        ((1.0 - weight_sum.min(1.0)) * spatial + modulated).max(0.0)
    }

    /// Chooses a substitution target for `base` at `position`.
    fn substitution_target(&self, base: Base, position: usize, rng: &mut SimRng) -> Base {
        if self.layer < SimulatorLayer::ConditionalLongDel {
            return base.random_other(rng);
        }
        let mut weights = self.learned.substitution[base.index()];
        if self.layer >= SimulatorLayer::SecondOrder {
            // Mixture: a fraction Σw of this class's substitutions is pinned
            // to the second-order targets (with their positional skew), the
            // residual follows the generic confusion row.
            let entries = &self.second_order[base.index()][ErrorKind::Substitution.index()];
            if !entries.is_empty() {
                let mut boosted = [0.0f64; 4];
                let mut weight_sum = 0.0;
                for entry in entries {
                    if let Some(target) = entry.target {
                        let m = entry.multipliers.get(position).copied().unwrap_or(1.0);
                        boosted[target.index()] += entry.weight * m;
                        weight_sum += entry.weight;
                    }
                }
                let residual = (1.0 - weight_sum).max(0.0);
                for (w, b) in weights.iter_mut().zip(boosted) {
                    *w = residual * *w + b;
                }
            }
        }
        weights[base.index()] = 0.0;
        let idx = sample_weighted_index(&weights, rng);
        Base::from_index(idx).unwrap_or_else(|| base.random_other(rng))
    }

    /// Samples a deletion run length (1 = single deletion).
    fn deletion_run_length(&self, rng: &mut SimRng) -> usize {
        if self.layer < SimulatorLayer::ConditionalLongDel
            || self.learned.long_deletion.length_weights.is_empty()
            || rng.random::<f64>() >= self.long_given_deletion
        {
            return 1;
        }
        sample_weighted_index(&self.learned.long_deletion.length_weights, rng) + 2
    }
}

impl ErrorModel for KeoliyaModel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let bases = reference.as_bases();
        let homopolymer = self
            .use_homopolymer
            .then(|| homopolymer_multipliers(bases, self.learned.homopolymer_boost));
        let mut read = Strand::with_capacity(bases.len() + 4);
        let mut i = 0usize;
        while i < bases.len() {
            let base = bases[i];
            let [mut p_sub, mut p_del, mut p_ins] = self.rates_at(base, i);
            if let Some(multipliers) = &homopolymer {
                let m = multipliers[i];
                p_sub = (p_sub * m).min(0.45);
                p_del = (p_del * m).min(0.45);
                p_ins = (p_ins * m).min(0.45);
            }
            let u: f64 = rng.random();
            if u < p_sub {
                read.push(self.substitution_target(base, i, rng));
            } else if u < p_sub + p_del {
                let run = self.deletion_run_length(rng);
                i += run;
                continue;
            } else if u < p_sub + p_del + p_ins {
                read.push(base);
                read.push(Base::random(rng));
            } else {
                read.push(base);
            }
            i += 1;
        }
        read
    }

    fn name(&self) -> String {
        format!("keoliya/{}", self.layer.label())
    }
}

/// Per-position multipliers: `boost` inside homopolymer runs (length ≥ 3),
/// normalised to mean 1.0 over the strand so the aggregate rate holds.
fn homopolymer_multipliers(bases: &[Base], boost: f64) -> Vec<f64> {
    let mut multipliers = vec![1.0f64; bases.len()];
    let mut run_start = 0usize;
    for i in 1..=bases.len() {
        if i == bases.len() || bases[i] != bases[run_start] {
            if i - run_start >= 3 {
                multipliers[run_start..i].iter_mut().for_each(|m| *m = boost);
            }
            run_start = i;
        }
    }
    let mean = multipliers.iter().sum::<f64>() / multipliers.len().max(1) as f64;
    if mean > 0.0 {
        multipliers.iter_mut().for_each(|m| *m /= mean);
    }
    multipliers
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_metrics::levenshtein;
    use dnasim_profile::{BaseErrorRates, LongDeletionParams};

    /// A hand-built learned model with known parameters.
    fn synthetic_model(aggregate: f64, strand_len: usize) -> LearnedModel {
        let per = aggregate / 3.0;
        let rates = BaseErrorRates {
            substitution: per,
            deletion: per,
            insertion: per,
        };
        let mut substitution = [[0.0f64; 4]; 4];
        for b in Base::ALL {
            for t in Base::ALL {
                if b != t {
                    substitution[b.index()][t.index()] = 1.0 / 3.0;
                }
            }
        }
        LearnedModel {
            strand_len,
            per_base: [rates; 4],
            substitution,
            long_deletion: LongDeletionParams {
                probability: 0.0033 * aggregate / 0.059,
                length_weights: vec![0.84, 0.13, 0.018, 0.002],
            },
            spatial_multipliers: vec![1.0; strand_len],
            second_order: Vec::new(),
            aggregate_error_rate: aggregate,
            homopolymer_boost: 1.0,
        }
    }

    fn empirical_rate(model: &KeoliyaModel, len: usize, trials: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        let mut errors = 0usize;
        for _ in 0..trials {
            let r = Strand::random(len, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            errors += levenshtein(r.as_bases(), c.as_bases());
        }
        errors as f64 / (len * trials) as f64
    }

    #[test]
    fn zero_rate_model_is_identity() {
        let model = KeoliyaModel::new(synthetic_model(0.0, 50), SimulatorLayer::SecondOrder);
        let mut rng = seeded(1);
        let r = Strand::random(50, &mut rng);
        assert_eq!(model.corrupt(&r, &mut rng), r);
    }

    #[test]
    fn all_layers_hold_aggregate_rate() {
        let learned = synthetic_model(0.06, 110);
        for layer in SimulatorLayer::ALL {
            let model = KeoliyaModel::new(learned.clone(), layer);
            let rate = empirical_rate(&model, 110, 300, 42);
            assert!(
                (rate - 0.06).abs() < 0.012,
                "{}: empirical rate {rate}",
                layer.label()
            );
        }
    }

    #[test]
    fn spatial_layer_concentrates_errors() {
        let mut learned = synthetic_model(0.10, 100);
        // All error mass at the last 10 positions.
        let mut spatial = vec![0.0; 100];
        spatial[90..].iter_mut().for_each(|m| *m = 10.0);
        learned.spatial_multipliers = spatial;
        let model = KeoliyaModel::new(learned, SimulatorLayer::SpatialSkew);
        let mut rng = seeded(2);
        // Substitution-only check: compare prefix (positions 0..50) which
        // must be error-free.
        for _ in 0..50 {
            let r = Strand::random(100, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            let head_errors =
                levenshtein(&r.as_bases()[..50], &c.as_bases()[..50.min(c.len())]);
            assert_eq!(head_errors, 0, "errors leaked into unweighted prefix");
        }
    }

    #[test]
    fn conditional_layer_uses_confusion_matrix() {
        let mut learned = synthetic_model(0.3, 60);
        // Force substitutions only, and make A always substitute to G.
        for r in learned.per_base.iter_mut() {
            r.deletion = 0.0;
            r.insertion = 0.0;
            r.substitution = 0.3;
        }
        learned.substitution[Base::A.index()] = [0.0, 0.0, 1.0, 0.0];
        let model = KeoliyaModel::new(learned, SimulatorLayer::ConditionalLongDel);
        let mut rng = seeded(3);
        let r: Strand = "A".repeat(500).parse().unwrap();
        let c = model.corrupt(&r, &mut rng);
        assert_eq!(c.len(), 500);
        let g_count = c.iter().filter(|&b| b == Base::G).count();
        let non_ag = c.iter().filter(|&b| b != Base::A && b != Base::G).count();
        assert!(g_count > 100, "expected many A→G substitutions, got {g_count}");
        assert_eq!(non_ag, 0, "confusion matrix violated");
    }

    #[test]
    fn naive_layer_ignores_confusion_matrix() {
        let mut learned = synthetic_model(0.3, 60);
        learned.substitution[Base::A.index()] = [0.0, 0.0, 1.0, 0.0];
        let model = KeoliyaModel::new(learned, SimulatorLayer::Naive);
        let mut rng = seeded(4);
        let r: Strand = "A".repeat(600).parse().unwrap();
        let c = model.corrupt(&r, &mut rng);
        // Naive targets are uniform over the other three bases, so C and T
        // must both occur.
        assert!(c.iter().any(|b| b == Base::C));
        assert!(c.iter().any(|b| b == Base::T));
    }

    #[test]
    fn long_deletions_only_above_naive() {
        let mut learned = synthetic_model(0.2, 80);
        for r in learned.per_base.iter_mut() {
            r.substitution = 0.0;
            r.insertion = 0.0;
            r.deletion = 0.2;
        }
        learned.long_deletion.probability = 0.2; // every deletion is long
        learned.long_deletion.length_weights = vec![0.0, 0.0, 0.0, 1.0]; // length 5
        let cond = KeoliyaModel::new(learned.clone(), SimulatorLayer::ConditionalLongDel);
        assert!(cond.long_given_deletion > 0.99);
        let naive = KeoliyaModel::new(learned, SimulatorLayer::Naive);
        let mut rng = seeded(5);
        let r = Strand::random(400, &mut rng);
        let c = cond.corrupt(&r, &mut rng);
        // Long runs of 5 at every deletion event shrink the read far below
        // what single deletions at the naive layer do.
        let c_naive = naive.corrupt(&r, &mut rng);
        assert!(c.len() < c_naive.len());
    }

    #[test]
    fn second_order_layer_biases_targets() {
        let mut learned = synthetic_model(0.3, 40);
        for r in learned.per_base.iter_mut() {
            r.deletion = 0.0;
            r.insertion = 0.0;
            r.substitution = 0.3;
        }
        learned.second_order = vec![dnasim_profile::SecondOrderError {
            op: EditOp::Subst {
                orig: Base::A,
                new: Base::G,
            },
            share: 0.9,
            positional_multipliers: vec![1.0; 40],
        }];
        let model = KeoliyaModel::new(learned, SimulatorLayer::SecondOrder);
        let mut rng = seeded(6);
        let r: Strand = "A".repeat(40).parse().unwrap();
        let mut g = 0usize;
        let mut other = 0usize;
        for _ in 0..200 {
            let c = model.corrupt(&r, &mut rng);
            for b in c.iter() {
                if b == Base::G {
                    g += 1;
                } else if b != Base::A {
                    other += 1;
                }
            }
        }
        assert!(g > other, "G substitutions ({g}) should dominate ({other})");
    }

    #[test]
    fn layers_are_ordered() {
        assert!(SimulatorLayer::Naive < SimulatorLayer::ConditionalLongDel);
        assert!(SimulatorLayer::SpatialSkew < SimulatorLayer::SecondOrder);
        assert_eq!(SimulatorLayer::ALL.len(), 4);
    }

    #[test]
    fn name_includes_layer() {
        let model = KeoliyaModel::new(synthetic_model(0.05, 10), SimulatorLayer::SpatialSkew);
        assert!(model.name().contains("Spatial"));
    }
}

#[cfg(test)]
mod homopolymer_tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_profile::{BaseErrorRates, LongDeletionParams};

    fn model_with_boost(boost: f64) -> KeoliyaModel {
        let rates = BaseErrorRates {
            substitution: 0.1,
            deletion: 0.0,
            insertion: 0.0,
        };
        let mut substitution = [[0.0f64; 4]; 4];
        for b in Base::ALL {
            for t in Base::ALL {
                if b != t {
                    substitution[b.index()][t.index()] = 1.0 / 3.0;
                }
            }
        }
        let learned = LearnedModel {
            strand_len: 60,
            per_base: [rates; 4],
            substitution,
            long_deletion: LongDeletionParams::default(),
            spatial_multipliers: vec![1.0; 60],
            second_order: Vec::new(),
            aggregate_error_rate: 0.1,
            homopolymer_boost: boost,
        };
        KeoliyaModel::new(learned, SimulatorLayer::SpatialSkew).with_homopolymer_modulation()
    }

    #[test]
    fn multipliers_have_mean_one() {
        let bases: Strand = "AAAACGTACGT".parse().unwrap();
        let m = homopolymer_multipliers(bases.as_bases(), 3.0);
        let mean = m.iter().sum::<f64>() / m.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(m[0] > m[6]);
    }

    #[test]
    fn boost_concentrates_errors_in_runs() {
        let model = model_with_boost(5.0);
        // Reference: 30 bases of homopolymer then 30 mixed bases.
        let reference: Strand = format!("{}{}", "A".repeat(30), "CGTACGTACGTACGTACGTACGTACGTACG")
            .parse()
            .unwrap();
        let mut rng = seeded(1);
        let mut run_errors = 0usize;
        let mut other_errors = 0usize;
        for _ in 0..400 {
            let read = model.corrupt(&reference, &mut rng);
            assert_eq!(read.len(), 60); // substitution-only model
            for i in 0..60 {
                if read[i] != reference[i] {
                    if i < 30 {
                        run_errors += 1;
                    } else {
                        other_errors += 1;
                    }
                }
            }
        }
        assert!(
            run_errors > 3 * other_errors,
            "run {run_errors} vs other {other_errors}"
        );
    }

    #[test]
    fn disabled_by_default() {
        let learned = model_with_boost(5.0).learned().clone();
        let model = KeoliyaModel::new(learned, SimulatorLayer::SpatialSkew);
        assert!(!model.use_homopolymer);
    }
}
