//! The full-histogram channel — the paper's §4.3 generalisation of
//! second-order errors: instead of keeping only the top-k specific errors,
//! replay the *complete* histogram of counts and locations of every
//! observed error.
//!
//! This is the maximal-fidelity end of the simulator spectrum, and also
//! its cautionary tale: with one parameter per (position, specific error)
//! the model can *memorise* its training dataset rather than summarise the
//! channel (the paper's explicit warning). The memorisation risk is
//! exercised in this module's tests.

use dnasim_core::rng::SimRng;
use dnasim_core::{Base, EditOp, Strand};
use dnasim_profile::ErrorStats;
use dnasim_core::rng::RngExt;

use crate::baseline::sample_weighted_index;
use crate::model::ErrorModel;

/// Per-position rate table for one strand position.
#[derive(Debug, Clone, Default, PartialEq)]
struct PositionRates {
    /// `substitution[orig][new]`: rate of the specific substitution,
    /// conditional on the reference base being `orig`.
    substitution: [[f64; 4]; 4],
    /// `deletion[orig]`: rate of deleting base `orig` here.
    deletion: [f64; 4],
    /// `insertion[base]`: rate of inserting `base` before this position
    /// (unconditional on the reference base).
    insertion: [f64; 4],
}

/// A channel model that replays the complete per-position error histogram
/// recovered by the profiler.
///
/// # Examples
///
/// ```
/// use dnasim_channel::{ErrorModel, FullHistogramModel};
/// use dnasim_core::{rng::seeded, Strand};
/// use dnasim_profile::{ErrorStats, TieBreak};
///
/// let mut rng = seeded(1);
/// let reference = Strand::random(60, &mut rng);
/// let mut stats = ErrorStats::new();
/// stats.record_pair(&reference, &reference.substrand(0..59), TieBreak::Random, &mut rng);
/// stats.record_pair(&reference, &reference, TieBreak::Random, &mut rng);
///
/// let model = FullHistogramModel::from_stats(&stats);
/// let read = model.corrupt(&reference, &mut rng);
/// assert!(read.len() <= reference.len() + 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FullHistogramModel {
    positions: Vec<PositionRates>,
}

impl FullHistogramModel {
    /// Builds the model from profiled statistics: every specific error's
    /// per-position count becomes a per-position rate.
    ///
    /// Base-conditional errors (substitutions, deletions) observed `c`
    /// times at a position covered by `s` reads get rate `4c/s` —
    /// conditional on the reference base matching, with the uniform-base
    /// prior making `E[errors]` match the training data.
    pub fn from_stats(stats: &ErrorStats) -> FullHistogramModel {
        let len = stats.strand_len();
        let mut positions = vec![PositionRates::default(); len];
        let sites = stats.positional_sites();
        for (op, stat) in stats.second_order_errors() {
            for (pos, &count) in stat.positional.iter().enumerate() {
                if count == 0 || pos >= len {
                    continue;
                }
                let covering = sites.get(pos).copied().unwrap_or(0);
                if covering == 0 {
                    continue;
                }
                let rate = count as f64 / covering as f64;
                let table = &mut positions[pos];
                match op {
                    EditOp::Subst { orig, new } => {
                        table.substitution[orig.index()][new.index()] +=
                            (rate * 4.0).min(0.9);
                    }
                    EditOp::Delete(b) => {
                        table.deletion[b.index()] += (rate * 4.0).min(0.9);
                    }
                    EditOp::Insert(b) => {
                        table.insertion[b.index()] += rate.min(0.9);
                    }
                    EditOp::Equal(_) => {}
                }
            }
        }
        FullHistogramModel { positions }
    }

    /// The strand length the histogram was learned on.
    pub fn strand_len(&self) -> usize {
        self.positions.len()
    }

    /// Total expected errors per read at the learned length (sanity /
    /// reporting).
    pub fn expected_errors_per_read(&self) -> f64 {
        self.positions
            .iter()
            .map(|p| {
                // Uniform base prior over conditional tables.
                let sub: f64 = p.substitution.iter().flatten().sum::<f64>() / 4.0;
                let del: f64 = p.deletion.iter().sum::<f64>() / 4.0;
                let ins: f64 = p.insertion.iter().sum::<f64>();
                sub + del + ins
            })
            .sum()
    }
}

impl ErrorModel for FullHistogramModel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let mut read = Strand::with_capacity(reference.len() + 4);
        for (pos, base) in reference.iter().enumerate() {
            let Some(table) = self.positions.get(pos) else {
                read.push(base);
                continue;
            };
            // Insertions before this position (any base).
            let ins_total: f64 = table.insertion.iter().sum();
            if ins_total > 0.0 && rng.random::<f64>() < ins_total.min(0.9) {
                let which = sample_weighted_index(&table.insertion, rng);
                read.push(Base::ALL[which % Base::COUNT]);
            }
            // Base-conditional substitution / deletion.
            let sub_row = &table.substitution[base.index()];
            let sub_total: f64 = sub_row.iter().sum();
            let del = table.deletion[base.index()];
            let u: f64 = rng.random();
            if u < sub_total {
                let which = sample_weighted_index(sub_row, rng);
                read.push(Base::ALL[which % Base::COUNT]);
            } else if u < sub_total + del {
                // deleted
            } else {
                read.push(base);
            }
        }
        read
    }

    fn name(&self) -> String {
        "full-histogram".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_metrics::levenshtein;
    use dnasim_profile::TieBreak;

    /// Profile a synthetic dataset generated by a known channel, build the
    /// histogram model from it, and return (stats, model).
    fn trained_model(seed: u64) -> (ErrorStats, FullHistogramModel) {
        use crate::parametric::ParametricModel;
        use crate::spatial::SpatialDistribution;
        let channel = ParametricModel::new(0.08, SpatialDistribution::VShaped);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for _ in 0..300 {
            let reference = Strand::random(80, &mut rng);
            for _ in 0..4 {
                let read = channel.corrupt(&reference, &mut rng);
                stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
            }
        }
        let model = FullHistogramModel::from_stats(&stats);
        (stats, model)
    }

    #[test]
    fn clean_training_data_yields_identity_model() {
        let mut rng = seeded(1);
        let mut stats = ErrorStats::new();
        let reference = Strand::random(50, &mut rng);
        for _ in 0..5 {
            stats.record_pair(&reference, &reference, TieBreak::Random, &mut rng);
        }
        let model = FullHistogramModel::from_stats(&stats);
        assert_eq!(model.expected_errors_per_read(), 0.0);
        assert_eq!(model.corrupt(&reference, &mut rng), reference);
    }

    #[test]
    fn replays_training_aggregate_rate() {
        let (stats, model) = trained_model(2);
        let trained_rate = stats.aggregate_error_rate();
        let mut rng = seeded(3);
        let mut errors = 0usize;
        let mut bases = 0usize;
        for _ in 0..400 {
            let reference = Strand::random(80, &mut rng);
            let read = model.corrupt(&reference, &mut rng);
            errors += levenshtein(reference.as_bases(), read.as_bases());
            bases += 80;
        }
        let replayed = errors as f64 / bases as f64;
        assert!(
            (replayed - trained_rate).abs() / trained_rate < 0.25,
            "replayed {replayed} vs trained {trained_rate}"
        );
    }

    #[test]
    fn replays_training_spatial_shape() {
        // Trained on V-shaped noise, the model must emit V-shaped noise.
        let (_, model) = trained_model(4);
        let mut rng = seeded(5);
        let mut positional = vec![0usize; 80];
        for _ in 0..600 {
            let reference = Strand::random(80, &mut rng);
            let read = model.corrupt(&reference, &mut rng);
            // Substitution-only comparison over the overlap keeps positions aligned.
            for i in 0..reference.len().min(read.len()) {
                if reference[i] != read[i] {
                    positional[i] += 1;
                    break; // first divergence only: indel shifts follow
                }
            }
        }
        let ends: usize = positional[..10].iter().sum::<usize>()
            + positional[70..].iter().sum::<usize>();
        let middle: usize = positional[35..45].iter().sum();
        assert!(ends > 2 * middle, "ends {ends} vs middle {middle}");
    }

    #[test]
    fn memorisation_risk_sparse_training_overfits_positions() {
        // The paper's warning: with few observations, the full histogram
        // pins errors to the exact positions seen in training instead of
        // generalising. Train on ONE read with one error and check the
        // model can only ever err at that position.
        let mut rng = seeded(6);
        let reference = Strand::random(40, &mut rng);
        let mut corrupted = reference.clone().into_bases();
        corrupted[17] = corrupted[17].complement();
        let read = Strand::from_bases(corrupted);
        let mut stats = ErrorStats::new();
        stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
        let model = FullHistogramModel::from_stats(&stats);
        for _ in 0..200 {
            let fresh = Strand::random(40, &mut rng);
            let out = model.corrupt(&fresh, &mut rng);
            assert_eq!(out.len(), 40);
            for i in 0..40 {
                if i != 17 {
                    assert_eq!(out[i], fresh[i], "error leaked to position {i}");
                }
            }
        }
    }

    #[test]
    fn positions_past_training_length_pass_through() {
        let (_, model) = trained_model(7);
        let mut rng = seeded(8);
        let long_reference = Strand::random(200, &mut rng);
        let read = model.corrupt(&long_reference, &mut rng);
        // The tail beyond the learned length (80) is untouched, so the
        // read's suffix equals the reference's.
        let tail_ref = long_reference.substrand(120..200);
        assert!(read.to_string().ends_with(&tail_ref.to_string()));
    }

    #[test]
    fn name_is_stable() {
        let (_, model) = trained_model(9);
        assert_eq!(model.name(), "full-histogram");
    }
}
