//! The error-model abstraction and the simulator driver.

use dnasim_core::rng::{SeedSequence, SimRng};
use dnasim_core::{
    pump_budgeted, Batch, Budget, Cluster, ClusterSink, ClusterSource, Dataset, DnasimError,
    Strand, WindowStats,
};
use dnasim_par::ThreadPool;

use crate::coverage::CoverageModel;

/// A noisy-channel error model: corrupts one reference strand into one
/// noisy read.
///
/// Implementations are the simulators under comparison: the naive model,
/// the DNASimulator baseline (Algorithm 1), the layered data-driven model,
/// and the parametric model used for sensitivity analysis.
///
/// The trait is object-safe so that experiment tables can iterate over a
/// heterogeneous suite of simulators.
pub trait ErrorModel: std::fmt::Debug {
    /// Produces one noisy read of `reference`.
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand;

    /// A short human-readable name for reports and tables.
    fn name(&self) -> String;
}

impl<M: ErrorModel + ?Sized> ErrorModel for &M {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        (**self).corrupt(reference, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<M: ErrorModel + ?Sized> ErrorModel for Box<M> {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        (**self).corrupt(reference, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// An error model that returns every reference unchanged — the zero-noise
/// channel, useful as a control and in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityModel;

impl ErrorModel for IdentityModel {
    fn corrupt(&self, reference: &Strand, _rng: &mut SimRng) -> Strand {
        reference.clone()
    }

    fn name(&self) -> String {
        "identity".to_owned()
    }
}

/// Drives an [`ErrorModel`] over a set of reference strands, drawing
/// per-cluster coverage from a [`CoverageModel`], to produce a simulated
/// [`Dataset`].
///
/// # Examples
///
/// ```
/// use dnasim_channel::{CoverageModel, IdentityModel, Simulator};
/// use dnasim_core::{rng::seeded, Strand};
///
/// let mut rng = seeded(1);
/// let references = vec![Strand::random(110, &mut rng)];
/// let sim = Simulator::new(IdentityModel, CoverageModel::Fixed(5));
/// let dataset = sim.simulate(&references, &mut rng);
/// assert_eq!(dataset.len(), 1);
/// assert_eq!(dataset.total_reads(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<M> {
    model: M,
    coverage: CoverageModel,
}

impl<M: ErrorModel> Simulator<M> {
    /// Creates a simulator from an error model and a coverage model.
    pub fn new(model: M, coverage: CoverageModel) -> Simulator<M> {
        Simulator { model, coverage }
    }

    /// The underlying error model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The coverage model.
    pub fn coverage(&self) -> &CoverageModel {
        &self.coverage
    }

    /// Simulates a dataset: one cluster per reference, with coverage drawn
    /// per cluster.
    pub fn simulate(&self, references: &[Strand], rng: &mut SimRng) -> Dataset {
        references
            .iter()
            .enumerate()
            .map(|(index, reference)| {
                let coverage = self.coverage.sample(index, rng);
                self.simulate_cluster(reference, coverage, rng)
            })
            .collect()
    }

    /// Simulates one cluster of `coverage` noisy reads for `reference`.
    pub fn simulate_cluster(
        &self,
        reference: &Strand,
        coverage: usize,
        rng: &mut SimRng,
    ) -> Cluster {
        let reads = (0..coverage)
            .map(|_| self.model.corrupt(reference, rng))
            .collect();
        Cluster::new(reference.clone(), reads)
    }

    /// Parallel counterpart of [`Simulator::simulate`] with per-cluster
    /// forked RNG streams.
    ///
    /// Where [`Simulator::simulate`] threads one RNG serially through every
    /// cluster, this method gives cluster `i` its own stream via
    /// [`SeedSequence::fork`], so the resulting dataset is byte-identical
    /// for every thread count (including a serial pool). The two methods
    /// therefore produce *different* (but equally valid) datasets for the
    /// same seed; pick one discipline per experiment.
    ///
    /// # Errors
    ///
    /// Returns [`DnasimError::Degraded`] if a worker panicked; completed
    /// clusters are discarded rather than returned partially.
    pub fn simulate_on(
        &self,
        references: &[Strand],
        seq: &SeedSequence,
        pool: &ThreadPool,
    ) -> Result<Dataset, DnasimError>
    where
        M: Sync,
    {
        let clusters = pool.par_map_seeded(seq, references, |index, reference, rng| {
            let coverage = self.coverage.sample(index, rng);
            self.simulate_cluster(reference, coverage, rng)
        })?;
        Ok(Dataset::from_clusters(clusters))
    }

    /// Resimulates a real dataset with *custom coverage*: the same
    /// reference strands, with each simulated cluster given exactly the
    /// coverage its real counterpart had (the Table 2.1 protocol).
    pub fn resimulate_matching(&self, real: &Dataset, rng: &mut SimRng) -> Dataset {
        real.iter()
            .map(|cluster| self.simulate_cluster(cluster.reference(), cluster.coverage(), rng))
            .collect()
    }

    /// Parallel counterpart of [`Simulator::resimulate_matching`]: cluster
    /// `i` is resimulated on the stream [`SeedSequence::fork`]`(i)`, so the
    /// output does not depend on the pool's thread count.
    ///
    /// # Errors
    ///
    /// Returns [`DnasimError::Degraded`] if a worker panicked.
    pub fn resimulate_matching_on(
        &self,
        real: &Dataset,
        seq: &SeedSequence,
        pool: &ThreadPool,
    ) -> Result<Dataset, DnasimError>
    where
        M: Sync,
    {
        let clusters = pool.par_map_seeded(seq, real.clusters(), |_, cluster, rng| {
            self.simulate_cluster(cluster.reference(), cluster.coverage(), rng)
        })?;
        Ok(Dataset::from_clusters(clusters))
    }

    /// Streaming counterpart of [`Simulator::simulate_on`]: simulates the
    /// references in bounded batches of at most `batch_size` clusters,
    /// pushing each finished batch into `sink`.
    ///
    /// Cluster `i` is simulated on the stream [`SeedSequence::fork`]`(i)`
    /// of its *global* index — never its within-batch position — so the
    /// output is byte-identical to [`Simulator::simulate_on`] for every
    /// batch size and thread count.
    ///
    /// # Errors
    ///
    /// [`DnasimError::Config`] for `batch_size == 0`,
    /// [`DnasimError::Degraded`] if a worker panicked, or whatever the
    /// sink reports.
    pub fn simulate_stream<K>(
        &self,
        references: &[Strand],
        seq: &SeedSequence,
        batch_size: usize,
        pool: &ThreadPool,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        M: Sync,
        K: ClusterSink + ?Sized,
    {
        self.simulate_stream_budgeted(references, seq, batch_size, pool, &Budget::unlimited(), sink)
    }

    /// [`Simulator::simulate_stream`] metered by a [`Budget`]: one work
    /// unit per cluster, admitted in the serial batch loop so exhaustion
    /// lands on the same global cluster index at any batch size or thread
    /// count. The admitted prefix is still emitted before the typed error.
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] on exhaustion or cancellation,
    /// plus everything [`Simulator::simulate_stream`] can report.
    pub fn simulate_stream_budgeted<K>(
        &self,
        references: &[Strand],
        seq: &SeedSequence,
        batch_size: usize,
        pool: &ThreadPool,
        budget: &Budget,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        M: Sync,
        K: ClusterSink + ?Sized,
    {
        if batch_size == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "streaming batch size must be at least 1",
            ));
        }
        let mut stats = WindowStats::default();
        let mut start = 0usize;
        while start < references.len() {
            budget.check("simulate")?;
            let len = batch_size.min(references.len() - start);
            let chunk = &references[start..start + len];
            let (clusters, admitted) = pool.par_map_admitted(budget, chunk, |i, reference| {
                let index = start + i;
                let mut rng = seq.fork_rng(index as u64);
                let coverage = self.coverage.sample(index, &mut rng);
                self.simulate_cluster(reference, coverage, &mut rng)
            })?;
            if admitted > 0 {
                stats.batches += 1;
                stats.clusters += admitted;
                stats.high_watermark = stats.high_watermark.max(admitted);
                sink.accept(Batch::new(start, clusters))?;
                start += admitted;
            }
            if admitted < len {
                return Err(budget.exceeded("simulate"));
            }
        }
        sink.finish()?;
        Ok(stats)
    }

    /// Streaming counterpart of [`Simulator::resimulate_matching_on`]:
    /// pulls real clusters from `source` in bounded batches, resimulates
    /// each with its real coverage, and pushes the results into `sink`.
    ///
    /// Per-cluster RNG streams fork from the cluster's global index, so
    /// the output matches [`Simulator::resimulate_matching_on`] byte for
    /// byte at any batch size or thread count.
    ///
    /// # Errors
    ///
    /// [`DnasimError::Config`] for `batch_size == 0`,
    /// [`DnasimError::Degraded`] if a worker panicked, or whatever the
    /// source or sink reports.
    pub fn resimulate_stream<S, K>(
        &self,
        source: &mut S,
        seq: &SeedSequence,
        batch_size: usize,
        pool: &ThreadPool,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        M: Sync,
        S: ClusterSource + ?Sized,
        K: ClusterSink + ?Sized,
    {
        self.resimulate_stream_budgeted(source, seq, batch_size, pool, &Budget::unlimited(), sink)
    }

    /// [`Simulator::resimulate_stream`] metered by a [`Budget`] through
    /// [`pump_budgeted`]: one work unit per cluster pulled, with the
    /// admitted prefix emitted before the typed deadline error.
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] on exhaustion or cancellation,
    /// plus everything [`Simulator::resimulate_stream`] can report.
    pub fn resimulate_stream_budgeted<S, K>(
        &self,
        source: &mut S,
        seq: &SeedSequence,
        batch_size: usize,
        pool: &ThreadPool,
        budget: &Budget,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        M: Sync,
        S: ClusterSource + ?Sized,
        K: ClusterSink + ?Sized,
    {
        pump_budgeted(source, sink, batch_size, budget, "resimulate", |batch| {
            let start = batch.start();
            let clusters = pool.par_map_indexed(batch.clusters(), |i, cluster| {
                let mut rng = seq.fork_rng((start + i) as u64);
                self.simulate_cluster(cluster.reference(), cluster.coverage(), &mut rng)
            })?;
            Ok(Batch::new(start, clusters))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn identity_model_is_lossless() {
        let mut rng = seeded(1);
        let r = Strand::random(50, &mut rng);
        assert_eq!(IdentityModel.corrupt(&r, &mut rng), r);
    }

    #[test]
    fn simulate_honours_fixed_coverage() {
        let mut rng = seeded(2);
        let refs: Vec<Strand> = (0..4).map(|_| Strand::random(20, &mut rng)).collect();
        let sim = Simulator::new(IdentityModel, CoverageModel::Fixed(3));
        let ds = sim.simulate(&refs, &mut rng);
        assert_eq!(ds.len(), 4);
        assert!(ds.iter().all(|c| c.coverage() == 3));
        for (c, r) in ds.iter().zip(&refs) {
            assert_eq!(c.reference(), r);
            assert!(c.reads().iter().all(|read| read == r));
        }
    }

    #[test]
    fn simulate_honours_custom_coverage() {
        let mut rng = seeded(3);
        let refs: Vec<Strand> = (0..3).map(|_| Strand::random(20, &mut rng)).collect();
        let sim = Simulator::new(IdentityModel, CoverageModel::Custom(vec![1, 0, 4]));
        let ds = sim.simulate(&refs, &mut rng);
        assert_eq!(ds.coverages(), vec![1, 0, 4]);
        assert_eq!(ds.erasure_count(), 1);
    }

    #[test]
    fn resimulate_matches_real_coverages() {
        let mut rng = seeded(4);
        let refs: Vec<Strand> = (0..5).map(|_| Strand::random(20, &mut rng)).collect();
        let real = Simulator::new(IdentityModel, CoverageModel::negative_binomial(8.0, 3.0))
            .simulate(&refs, &mut rng);
        let sim = Simulator::new(IdentityModel, CoverageModel::Fixed(999));
        let resim = sim.resimulate_matching(&real, &mut rng);
        assert_eq!(resim.coverages(), real.coverages());
        assert_eq!(resim.references(), real.references());
    }

    #[test]
    fn simulate_on_is_thread_count_invariant() {
        let mut rng = seeded(6);
        let refs: Vec<Strand> = (0..10).map(|_| Strand::random(20, &mut rng)).collect();
        let sim = Simulator::new(IdentityModel, CoverageModel::negative_binomial(6.0, 2.0));
        let seq = SeedSequence::new(99);
        let serial = sim.simulate_on(&refs, &seq, &ThreadPool::serial()).unwrap();
        for threads in [2, 4, 8] {
            let par = sim.simulate_on(&refs, &seq, &ThreadPool::new(threads)).unwrap();
            assert_eq!(serial, par);
        }
        let resim = sim
            .resimulate_matching_on(&serial, &seq, &ThreadPool::new(3))
            .unwrap();
        assert_eq!(resim.coverages(), serial.coverages());
    }

    #[test]
    fn simulate_stream_matches_simulate_on_at_any_batch_size() {
        let mut rng = seeded(7);
        let refs: Vec<Strand> = (0..11).map(|_| Strand::random(20, &mut rng)).collect();
        let sim = Simulator::new(IdentityModel, CoverageModel::negative_binomial(5.0, 2.0));
        let seq = SeedSequence::new(42);
        let pool = ThreadPool::new(3);
        let whole = sim.simulate_on(&refs, &seq, &pool).unwrap();
        for batch_size in [1, 3, 7, usize::MAX] {
            let mut streamed = Dataset::new();
            let stats = sim
                .simulate_stream(&refs, &seq, batch_size, &pool, &mut streamed)
                .unwrap();
            assert_eq!(streamed, whole, "batch_size={batch_size}");
            assert_eq!(stats.clusters, refs.len());
            assert!(stats.high_watermark <= batch_size);
        }
    }

    #[test]
    fn resimulate_stream_matches_resimulate_matching_on() {
        let mut rng = seeded(8);
        let refs: Vec<Strand> = (0..9).map(|_| Strand::random(20, &mut rng)).collect();
        let real = Simulator::new(IdentityModel, CoverageModel::negative_binomial(6.0, 2.0))
            .simulate(&refs, &mut rng);
        let sim = Simulator::new(IdentityModel, CoverageModel::Fixed(0));
        let seq = SeedSequence::new(17);
        let pool = ThreadPool::new(4);
        let whole = sim.resimulate_matching_on(&real, &seq, &pool).unwrap();
        for batch_size in [1, 2, 5, usize::MAX] {
            let mut streamed = Dataset::new();
            sim.resimulate_stream(&mut real.stream(), &seq, batch_size, &pool, &mut streamed)
                .unwrap();
            assert_eq!(streamed, whole, "batch_size={batch_size}");
        }
    }

    #[test]
    fn simulate_stream_rejects_zero_batch() {
        let sim = Simulator::new(IdentityModel, CoverageModel::Fixed(1));
        let seq = SeedSequence::new(1);
        let mut out = Dataset::new();
        assert!(sim
            .simulate_stream(&[], &seq, 0, &ThreadPool::serial(), &mut out)
            .is_err());
    }

    #[test]
    fn trait_objects_work() {
        let mut rng = seeded(5);
        let boxed: Box<dyn ErrorModel> = Box::new(IdentityModel);
        let r = Strand::random(10, &mut rng);
        assert_eq!(boxed.corrupt(&r, &mut rng), r);
        assert_eq!(boxed.name(), "identity");
        let sim = Simulator::new(boxed, CoverageModel::Fixed(1));
        assert_eq!(sim.simulate(&[r], &mut rng).total_reads(), 1);
    }
}
