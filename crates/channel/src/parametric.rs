//! The parametric model used for sensitivity analysis (§3.4): a chosen
//! aggregate error rate spread over the strand by a chosen
//! [`SpatialDistribution`].

use dnasim_core::rng::SimRng;
use dnasim_core::{Base, Strand};
use dnasim_core::rng::RngExt;

use crate::model::ErrorModel;
use crate::spatial::SpatialDistribution;

/// An error model fully described by `(p̄, kind mix, spatial shape)`.
///
/// Because every [`SpatialDistribution`] normalises to mean 1.0, datasets
/// generated at the same `total_rate` but different shapes have the same
/// aggregate error — only its placement differs. That is the controlled
/// experiment behind Figs. 3.7–3.10.
///
/// # Examples
///
/// ```
/// use dnasim_channel::{ErrorModel, ParametricModel, SpatialDistribution};
/// use dnasim_core::{rng::seeded, Strand};
///
/// let model = ParametricModel::new(0.15, SpatialDistribution::AShaped);
/// let mut rng = seeded(1);
/// let reference = Strand::random(110, &mut rng);
/// let read = model.corrupt(&reference, &mut rng);
/// assert!(read.len() > 70);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricModel {
    total_rate: f64,
    /// Fractions `[substitution, deletion, insertion]`, summing to 1.
    kind_mix: [f64; 3],
    spatial: SpatialDistribution,
}

impl ParametricModel {
    /// A model with aggregate rate `total_rate` split equally among the
    /// three error kinds.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is not in `[0, 1]`.
    pub fn new(total_rate: f64, spatial: SpatialDistribution) -> ParametricModel {
        ParametricModel::with_kind_mix(total_rate, [1.0 / 3.0; 3], spatial)
    }

    /// A model with an explicit kind mix `[sub, del, ins]` (normalised
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if `total_rate ∉ [0, 1]` or the mix is all zeros / negative.
    pub fn with_kind_mix(
        total_rate: f64,
        kind_mix: [f64; 3],
        spatial: SpatialDistribution,
    ) -> ParametricModel {
        assert!((0.0..=1.0).contains(&total_rate), "rate must be in [0, 1]");
        assert!(kind_mix.iter().all(|&m| m >= 0.0), "mix must be non-negative");
        let total: f64 = kind_mix.iter().sum();
        assert!(total > 0.0 || total_rate == 0.0, "mix must not be all zero");
        let kind_mix = if total > 0.0 {
            [
                kind_mix[0] / total,
                kind_mix[1] / total,
                kind_mix[2] / total,
            ]
        } else {
            [0.0; 3]
        };
        ParametricModel {
            total_rate,
            kind_mix,
            spatial,
        }
    }

    /// The aggregate per-base error rate.
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// The spatial shape.
    pub fn spatial(&self) -> &SpatialDistribution {
        &self.spatial
    }
}

impl ErrorModel for ParametricModel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let multipliers = self.spatial.multipliers(reference.len());
        let mut read = Strand::with_capacity(reference.len() + 4);
        for (i, base) in reference.iter().enumerate() {
            let rate = (self.total_rate * multipliers[i]).min(0.95);
            let p_sub = rate * self.kind_mix[0];
            let p_del = rate * self.kind_mix[1];
            let p_ins = rate * self.kind_mix[2];
            let u: f64 = rng.random();
            if u < p_sub {
                read.push(base.random_other(rng));
            } else if u < p_sub + p_del {
                // Deleted.
            } else if u < p_sub + p_del + p_ins {
                read.push(base);
                read.push(Base::random(rng));
            } else {
                read.push(base);
            }
        }
        read
    }

    fn name(&self) -> String {
        format!("parametric(p={}, {})", self.total_rate, self.spatial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_metrics::levenshtein;

    fn empirical_rate(model: &ParametricModel, trials: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        let mut errors = 0usize;
        let len = 110;
        for _ in 0..trials {
            let r = Strand::random(len, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            errors += levenshtein(r.as_bases(), c.as_bases());
        }
        errors as f64 / (len * trials) as f64
    }

    #[test]
    fn zero_rate_is_identity() {
        let model = ParametricModel::new(0.0, SpatialDistribution::Uniform);
        let mut rng = seeded(1);
        let r = Strand::random(80, &mut rng);
        assert_eq!(model.corrupt(&r, &mut rng), r);
    }

    #[test]
    fn shapes_preserve_aggregate_rate() {
        for shape in [
            SpatialDistribution::Uniform,
            SpatialDistribution::AShaped,
            SpatialDistribution::VShaped,
            SpatialDistribution::nanopore_terminal(),
        ] {
            let model = ParametricModel::new(0.15, shape.clone());
            let rate = empirical_rate(&model, 300, 7);
            assert!(
                (rate - 0.15).abs() < 0.02,
                "{shape}: empirical rate {rate}"
            );
        }
    }

    #[test]
    fn sweep_rates_track_parameter() {
        for p in [0.03, 0.09, 0.15] {
            let model = ParametricModel::new(p, SpatialDistribution::Uniform);
            let rate = empirical_rate(&model, 300, 11);
            assert!((rate - p).abs() < 0.015, "p={p}: empirical {rate}");
        }
    }

    #[test]
    fn a_shape_places_errors_in_middle() {
        let model = ParametricModel::new(0.3, SpatialDistribution::AShaped);
        let mut rng = seeded(3);
        // Substitution-only mix to keep positions aligned.
        let model = ParametricModel::with_kind_mix(
            model.total_rate(),
            [1.0, 0.0, 0.0],
            SpatialDistribution::AShaped,
        );
        let mut mid = 0usize;
        let mut ends = 0usize;
        for _ in 0..300 {
            let r = Strand::random(99, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            for i in 0..99 {
                if r[i] != c[i] {
                    if (33..66).contains(&i) {
                        mid += 1;
                    } else if !(11..88).contains(&i) {
                        ends += 1;
                    }
                }
            }
        }
        assert!(mid > 2 * ends, "mid {mid} vs ends {ends}");
    }

    #[test]
    fn v_shape_places_errors_at_ends() {
        let model = ParametricModel::with_kind_mix(
            0.3,
            [1.0, 0.0, 0.0],
            SpatialDistribution::VShaped,
        );
        let mut rng = seeded(4);
        let mut mid = 0usize;
        let mut ends = 0usize;
        for _ in 0..300 {
            let r = Strand::random(99, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            for i in 0..99 {
                if r[i] != c[i] {
                    if (33..66).contains(&i) {
                        mid += 1;
                    } else if !(11..88).contains(&i) {
                        ends += 1;
                    }
                }
            }
        }
        assert!(ends > 2 * mid, "ends {ends} vs mid {mid}");
    }

    #[test]
    fn kind_mix_is_respected() {
        // Deletion-only model strictly shortens.
        let model =
            ParametricModel::with_kind_mix(0.2, [0.0, 1.0, 0.0], SpatialDistribution::Uniform);
        let mut rng = seeded(5);
        let r = Strand::random(300, &mut rng);
        let c = model.corrupt(&r, &mut rng);
        assert!(c.len() < r.len());
        // Insertion-only model strictly lengthens.
        let model =
            ParametricModel::with_kind_mix(0.2, [0.0, 0.0, 1.0], SpatialDistribution::Uniform);
        let c = model.corrupt(&r, &mut rng);
        assert!(c.len() > r.len());
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn rejects_invalid_rate() {
        let _ = ParametricModel::new(1.5, SpatialDistribution::Uniform);
    }
}
