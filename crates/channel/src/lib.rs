//! Noisy-channel models for DNA data storage.
//!
//! DNA storage subjects every strand to stochastic insertion, deletion and
//! substitution errors across synthesis, PCR, storage and sequencing. This
//! crate implements the simulators the paper builds and compares:
//!
//! * [`NaiveModel`] — three aggregate probabilities;
//! * [`DnaSimulatorModel`] — DNASimulator's Algorithm 1 (per-base
//!   dictionary, position-independent, long deletions);
//! * [`KeoliyaModel`] — the paper's layered data-driven simulator
//!   (conditional probabilities → long deletions → spatial skew →
//!   second-order errors), parameterised by a
//!   [`LearnedModel`](dnasim_profile::LearnedModel);
//! * [`ParametricModel`] — controlled `(rate, shape)` channels for the
//!   sensitivity analysis;
//! * [`SpatialDistribution`] — uniform / terminal-skew / A-shaped /
//!   V-shaped error placement at constant aggregate rate;
//! * [`CoverageModel`] — fixed / custom / negative-binomial / normal /
//!   Poisson reads-per-strand distributions;
//! * [`Simulator`] — drives any model over reference strands to produce a
//!   clustered [`Dataset`](dnasim_core::Dataset);
//! * [`stages`] — the composable multi-stage pipeline
//!   (synthesis → decay → PCR → sequencing) that §4.2 calls for.
//!
//! # Examples
//!
//! ```
//! use dnasim_channel::{CoverageModel, NaiveModel, Simulator};
//! use dnasim_core::{rng::seeded, Strand};
//!
//! let mut rng = seeded(42);
//! let references: Vec<Strand> = (0..10).map(|_| Strand::random(110, &mut rng)).collect();
//! let simulator = Simulator::new(
//!     NaiveModel::with_total_rate(0.059),
//!     CoverageModel::negative_binomial(26.97, 4.0),
//! );
//! let dataset = simulator.simulate(&references, &mut rng);
//! assert_eq!(dataset.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod coverage;
mod histogram;
mod keoliya;
mod model;
mod parametric;
mod spatial;
pub mod stages;

pub use baseline::{DnaSimEntry, DnaSimulatorModel, NaiveModel};
pub use coverage::CoverageModel;
pub use histogram::FullHistogramModel;
pub use keoliya::{KeoliyaModel, SimulatorLayer};
pub use model::{ErrorModel, IdentityModel, Simulator};
pub use parametric::ParametricModel;
pub use spatial::{SpatialDistribution, TerminalSkew};
