//! Baseline simulators the paper compares against: the naive
//! three-parameter model and DNASimulator's Algorithm 1.

use dnasim_core::rng::SimRng;
use dnasim_core::{Base, Strand};
use dnasim_core::rng::RngExt;

use crate::model::ErrorModel;

/// The naive simulator: three aggregate probabilities, independent of base
/// type, position, and error history.
///
/// # Examples
///
/// ```
/// use dnasim_channel::{ErrorModel, NaiveModel};
/// use dnasim_core::{rng::seeded, Strand};
///
/// let model = NaiveModel::new(0.01, 0.02, 0.03);
/// let mut rng = seeded(1);
/// let reference = Strand::random(110, &mut rng);
/// let read = model.corrupt(&reference, &mut rng);
/// assert!(read.len() > 90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveModel {
    p_insertion: f64,
    p_deletion: f64,
    p_substitution: f64,
}

impl NaiveModel {
    /// Creates a naive model from the three aggregate probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the sum exceeds 1.
    pub fn new(p_insertion: f64, p_deletion: f64, p_substitution: f64) -> NaiveModel {
        assert!(
            p_insertion >= 0.0 && p_deletion >= 0.0 && p_substitution >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(
            p_insertion + p_deletion + p_substitution <= 1.0,
            "probabilities must sum to at most 1"
        );
        NaiveModel {
            p_insertion,
            p_deletion,
            p_substitution,
        }
    }

    /// A naive model with a total error rate `p`, split equally between the
    /// three kinds.
    pub fn with_total_rate(p: f64) -> NaiveModel {
        NaiveModel::new(p / 3.0, p / 3.0, p / 3.0)
    }

    /// Total error probability per base.
    pub fn total_rate(&self) -> f64 {
        self.p_insertion + self.p_deletion + self.p_substitution
    }
}

impl ErrorModel for NaiveModel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let mut read = Strand::with_capacity(reference.len() + 4);
        for base in reference.iter() {
            let u: f64 = rng.random();
            if u < self.p_substitution {
                read.push(base.random_other(rng));
            } else if u < self.p_substitution + self.p_insertion {
                // Insertion after the base, as in DNASimulator's convention.
                read.push(base);
                read.push(Base::random(rng));
            } else if u < self.p_substitution + self.p_insertion + self.p_deletion {
                // Deleted: emit nothing.
            } else {
                read.push(base);
            }
        }
        read
    }

    fn name(&self) -> String {
        "naive".to_owned()
    }
}

/// Per-base error-dictionary entry of DNASimulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DnaSimEntry {
    /// `P(substitution | base)`.
    pub substitution: f64,
    /// `P(insertion | base)`.
    pub insertion: f64,
    /// `P(single deletion | base)`.
    pub deletion: f64,
    /// `P(long deletion | base)`.
    pub long_deletion: f64,
}

impl DnaSimEntry {
    fn total(&self) -> f64 {
        self.substitution + self.insertion + self.deletion + self.long_deletion
    }
}

/// Reimplementation of DNASimulator's error-injection algorithm (paper
/// Algorithm 1).
///
/// A per-base dictionary `E` of probabilities for substitution, insertion,
/// deletion and long-deletion drives a single-pass injection. Errors are
/// position-independent; the substitution target is drawn uniformly from
/// *all four* bases (so a "substitution" is silently identity with
/// probability ¼ — a quirk of the original that we reproduce faithfully).
///
/// # Examples
///
/// ```
/// use dnasim_channel::{DnaSimulatorModel, ErrorModel};
/// use dnasim_core::{rng::seeded, Strand};
///
/// let model = DnaSimulatorModel::nanopore_default();
/// let mut rng = seeded(2);
/// let reference = Strand::random(110, &mut rng);
/// let read = model.corrupt(&reference, &mut rng);
/// assert!(read.len() > 80 && read.len() < 140);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DnaSimulatorModel {
    table: [DnaSimEntry; 4],
    /// `weights[i]` = relative frequency of long deletions of length `i+2`.
    long_deletion_weights: Vec<f64>,
}

impl DnaSimulatorModel {
    /// Creates a model from a per-base dictionary and a long-deletion
    /// length distribution (`weights[i]` for length `i + 2`).
    ///
    /// # Panics
    ///
    /// Panics if any entry's probabilities sum over 1.
    pub fn new(table: [DnaSimEntry; 4], long_deletion_weights: Vec<f64>) -> DnaSimulatorModel {
        for entry in &table {
            assert!(entry.total() <= 1.0, "dictionary row sums over 1");
        }
        DnaSimulatorModel {
            table,
            long_deletion_weights,
        }
    }

    /// The precomputed Nanopore dictionary: a position-independent profile
    /// whose aggregate error rate matches the ~5.9% of the reference
    /// Nanopore dataset (deletion-dominated, as DNASimulator's shipped
    /// statistics are).
    pub fn nanopore_default() -> DnaSimulatorModel {
        let entry = DnaSimEntry {
            // Nominal substitution is inflated by 4/3 because Algorithm 1's
            // uniform 4-way target silently keeps the base ¼ of the time.
            substitution: 0.024,
            insertion: 0.012,
            deletion: 0.026,
            long_deletion: 0.0033,
        };
        DnaSimulatorModel::new(
            [entry; 4],
            vec![0.84, 0.13, 0.018, 0.002, 0.0002],
        )
    }

    /// The dictionary row for `base`.
    pub fn entry(&self, base: Base) -> DnaSimEntry {
        self.table[base.index()]
    }

    fn sample_long_deletion_len(&self, rng: &mut SimRng) -> usize {
        sample_weighted_index(&self.long_deletion_weights, rng) + 2
    }
}

impl ErrorModel for DnaSimulatorModel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let mut read = Strand::with_capacity(reference.len() + 4);
        let bases = reference.as_bases();
        let mut i = 0usize;
        while i < bases.len() {
            let base = bases[i];
            let e = self.table[base.index()];
            let u: f64 = rng.random();
            if u < e.substitution {
                // Uniform over all four bases, including the original.
                read.push(Base::random(rng));
            } else if u < e.substitution + e.insertion {
                read.push(base);
                read.push(Base::random(rng));
            } else if u < e.substitution + e.insertion + e.deletion {
                // Single deletion: emit nothing.
            } else if u < e.total() {
                // Long deletion: skip this and the following bases.
                let len = self.sample_long_deletion_len(rng);
                i += len;
                continue;
            } else {
                read.push(base);
            }
            i += 1;
        }
        read
    }

    fn name(&self) -> String {
        "dnasimulator".to_owned()
    }
}

/// Samples an index proportional to `weights` (0 if all weights are zero or
/// the slice is empty, so callers always get a valid in-range choice).
pub(crate) fn sample_weighted_index(weights: &[f64], rng: &mut SimRng) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 || weights.is_empty() {
        return 0;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_metrics::levenshtein;

    fn mean_edit_rate<M: ErrorModel>(model: &M, len: usize, trials: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        let mut errors = 0usize;
        for _ in 0..trials {
            let r = Strand::random(len, &mut rng);
            let c = model.corrupt(&r, &mut rng);
            errors += levenshtein(r.as_bases(), c.as_bases());
        }
        errors as f64 / (len * trials) as f64
    }

    #[test]
    fn naive_zero_rate_is_identity() {
        let model = NaiveModel::new(0.0, 0.0, 0.0);
        let mut rng = seeded(1);
        let r = Strand::random(100, &mut rng);
        assert_eq!(model.corrupt(&r, &mut rng), r);
    }

    #[test]
    fn naive_rate_matches_parameters() {
        let model = NaiveModel::with_total_rate(0.06);
        let rate = mean_edit_rate(&model, 110, 300, 2);
        assert!((rate - 0.06).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn naive_pure_deletion_shortens() {
        let model = NaiveModel::new(0.0, 0.5, 0.0);
        let mut rng = seeded(3);
        let r = Strand::random(200, &mut rng);
        let c = model.corrupt(&r, &mut rng);
        assert!(c.len() < r.len());
        assert!((c.len() as f64) < 0.7 * r.len() as f64);
    }

    #[test]
    fn naive_pure_insertion_lengthens() {
        let model = NaiveModel::new(0.5, 0.0, 0.0);
        let mut rng = seeded(4);
        let r = Strand::random(200, &mut rng);
        let c = model.corrupt(&r, &mut rng);
        assert!(c.len() > r.len());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn naive_rejects_overflowing_probabilities() {
        let _ = NaiveModel::new(0.5, 0.4, 0.3);
    }

    #[test]
    fn dnasimulator_default_rate_is_nanopore_like() {
        let model = DnaSimulatorModel::nanopore_default();
        let rate = mean_edit_rate(&model, 110, 300, 5);
        // ~5-6% aggregate like the real Nanopore dataset.
        assert!(rate > 0.04 && rate < 0.08, "empirical rate {rate}");
    }

    #[test]
    fn dnasimulator_long_deletions_occur() {
        let entry = DnaSimEntry {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            long_deletion: 0.5,
        };
        let model = DnaSimulatorModel::new([entry; 4], vec![1.0]);
        let mut rng = seeded(6);
        let r = Strand::random(100, &mut rng);
        let c = model.corrupt(&r, &mut rng);
        // Long deletions of length 2 at 50% starting probability erase
        // roughly ⅔ of the strand.
        assert!(c.len() < 60, "read length {}", c.len());
    }

    #[test]
    fn dnasimulator_zero_table_is_identity() {
        let model = DnaSimulatorModel::new([DnaSimEntry::default(); 4], vec![1.0]);
        let mut rng = seeded(7);
        let r = Strand::random(64, &mut rng);
        assert_eq!(model.corrupt(&r, &mut rng), r);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(8);
        let weights = [0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(sample_weighted_index(&weights, &mut rng), 1);
        }
        let spread = [0.5, 0.5];
        let mut seen = [0usize; 2];
        for _ in 0..200 {
            seen[sample_weighted_index(&spread, &mut rng)] += 1;
        }
        assert!(seen[0] > 50 && seen[1] > 50);
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut rng = seeded(9);
        assert_eq!(sample_weighted_index(&[], &mut rng), 0);
        assert_eq!(sample_weighted_index(&[0.0, 0.0], &mut rng), 0);
    }

    #[test]
    fn model_names() {
        assert_eq!(NaiveModel::with_total_rate(0.1).name(), "naive");
        assert_eq!(
            DnaSimulatorModel::nanopore_default().name(),
            "dnasimulator"
        );
    }
}
