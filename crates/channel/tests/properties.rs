//! Property-based tests for the channel models: invariants that must hold
//! for every simulator in the suite, under any strand and seed.

use dnasim_testkit::prelude::*;

use dnasim_channel::{
    CoverageModel, DnaSimulatorModel, ErrorModel, IdentityModel, KeoliyaModel, NaiveModel,
    ParametricModel, Simulator, SimulatorLayer, SpatialDistribution,
};
use dnasim_core::rng::seeded;
use dnasim_core::{Base, Strand};
use dnasim_profile::{BaseErrorRates, LearnedModel, LongDeletionParams};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

/// A synthetic learned model with uniform conditional rates.
fn learned(rate: f64, strand_len: usize) -> LearnedModel {
    let per = rate / 3.0;
    let rates = BaseErrorRates {
        substitution: per,
        deletion: per,
        insertion: per,
    };
    let mut substitution = [[0.0f64; 4]; 4];
    for b in Base::ALL {
        for t in Base::ALL {
            if b != t {
                substitution[b.index()][t.index()] = 1.0 / 3.0;
            }
        }
    }
    LearnedModel {
        strand_len,
        per_base: [rates; 4],
        substitution,
        long_deletion: LongDeletionParams {
            probability: rate / 30.0,
            length_weights: vec![0.8, 0.2],
        },
        spatial_multipliers: vec![1.0; strand_len],
        second_order: Vec::new(),
        aggregate_error_rate: rate,
        homopolymer_boost: 1.0,
    }
}

/// Every model in the suite, boxed.
fn all_models(rate: f64, strand_len: usize) -> Vec<Box<dyn ErrorModel>> {
    let mut models: Vec<Box<dyn ErrorModel>> = vec![
        Box::new(IdentityModel),
        Box::new(NaiveModel::with_total_rate(rate)),
        Box::new(DnaSimulatorModel::nanopore_default()),
        Box::new(ParametricModel::new(rate, SpatialDistribution::AShaped)),
        Box::new(ParametricModel::new(rate, SpatialDistribution::VShaped)),
    ];
    for layer in SimulatorLayer::ALL {
        models.push(Box::new(KeoliyaModel::new(learned(rate, strand_len), layer)));
    }
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reads_have_plausible_lengths(
        reference in strand(0..120),
        seed in any::<u64>(),
        rate in 0.0f64..0.3,
    ) {
        let mut rng = seeded(seed);
        for model in all_models(rate, reference.len()) {
            let read = model.corrupt(&reference, &mut rng);
            // Insertions at most double the strand (one insert per base).
            prop_assert!(
                read.len() <= reference.len() * 2 + 2,
                "{} emitted {} bases from {}",
                model.name(),
                read.len(),
                reference.len()
            );
        }
    }

    #[test]
    fn empty_reference_yields_empty_read(seed in any::<u64>(), rate in 0.0f64..0.3) {
        let mut rng = seeded(seed);
        for model in all_models(rate, 0) {
            prop_assert!(model.corrupt(&Strand::new(), &mut rng).is_empty());
        }
    }

    #[test]
    fn corruption_is_seed_deterministic(
        reference in strand(10..80),
        seed in any::<u64>(),
        rate in 0.0f64..0.3,
    ) {
        for model in all_models(rate, reference.len()) {
            let a = model.corrupt(&reference, &mut seeded(seed));
            let b = model.corrupt(&reference, &mut seeded(seed));
            prop_assert_eq!(a, b, "{} not deterministic", model.name());
        }
    }

    #[test]
    fn simulator_dataset_shape(
        refs in dnasim_testkit::collection::vec(strand(20..40), 1..6),
        coverage in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded(seed);
        let sim = Simulator::new(
            NaiveModel::with_total_rate(0.05),
            CoverageModel::Fixed(coverage),
        );
        let ds = sim.simulate(&refs, &mut rng);
        prop_assert_eq!(ds.len(), refs.len());
        prop_assert_eq!(ds.total_reads(), refs.len() * coverage);
        prop_assert_eq!(ds.references(), refs);
    }

    #[test]
    fn coverage_models_are_nonnegative_and_seeded(
        seed in any::<u64>(),
        index in 0usize..50,
    ) {
        let models = [
            CoverageModel::Fixed(7),
            CoverageModel::Custom(vec![1, 2, 3]),
            CoverageModel::negative_binomial(10.0, 2.0),
            CoverageModel::Normal { mean: 8.0, std_dev: 4.0 },
            CoverageModel::Poisson { lambda: 6.0 },
        ];
        for model in &models {
            let a = model.sample(index, &mut seeded(seed));
            let b = model.sample(index, &mut seeded(seed));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn spatial_multipliers_mean_one_for_any_length(len in 1usize..200) {
        for shape in [
            SpatialDistribution::Uniform,
            SpatialDistribution::AShaped,
            SpatialDistribution::VShaped,
            SpatialDistribution::nanopore_terminal(),
        ] {
            let m = shape.multipliers(len);
            prop_assert_eq!(m.len(), len);
            let mean = m.iter().sum::<f64>() / len as f64;
            prop_assert!((mean - 1.0).abs() < 1e-9, "{shape} at {len}: mean {mean}");
            prop_assert!(m.iter().all(|&x| x.is_finite() && x >= 0.0));
        }
    }
}
