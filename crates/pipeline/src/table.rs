//! Result tables: the data structures the experiment runners emit and the
//! harness prints.

use std::fmt;

use dnasim_metrics::AccuracyReport;

/// One (per-strand %, per-char %) accuracy pair — a table cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyCell {
    /// Per-strand accuracy in percent.
    pub per_strand: f64,
    /// Per-character accuracy in percent.
    pub per_char: f64,
}

impl From<AccuracyReport> for AccuracyCell {
    fn from(report: AccuracyReport) -> AccuracyCell {
        AccuracyCell {
            per_strand: report.per_strand_percent(),
            per_char: report.per_char_percent(),
        }
    }
}

impl fmt::Display for AccuracyCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:6.2} / {:6.2}", self.per_strand, self.per_char)
    }
}

/// One labelled row of accuracy cells, keyed by algorithm name.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label (dataset / simulator name).
    pub label: String,
    /// `(algorithm, cell)` pairs in column order.
    pub cells: Vec<(String, AccuracyCell)>,
}

impl TableRow {
    /// The cell for `algorithm`, if present.
    pub fn cell(&self, algorithm: &str) -> Option<AccuracyCell> {
        self.cells
            .iter()
            .find(|(name, _)| name == algorithm)
            .map(|(_, c)| *c)
    }
}

/// A titled accuracy table (one of the paper's Tables 2.1–3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title, e.g. `"Table 3.1 (N = 5)"`.
    pub title: String,
    /// Rows in presentation order.
    pub rows: Vec<TableRow>,
}

impl Table {
    /// The row with the given label, if present.
    pub fn row(&self, label: &str) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Column header from the first row.
        if let Some(first) = self.rows.first() {
            write!(f, "{:<24}", "data")?;
            for (algo, _) in &first.cells {
                write!(f, " | {algo:^17}")?;
            }
            writeln!(f)?;
            write!(f, "{:<24}", "")?;
            for _ in &first.cells {
                write!(f, " | {:^17}", "strand% / char%")?;
            }
            writeln!(f)?;
        }
        for row in &self.rows {
            write!(f, "{:<24}", row.label)?;
            for (_, cell) in &row.cells {
                write!(f, " | {cell:^17}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(s: f64, c: f64) -> AccuracyCell {
        AccuracyCell {
            per_strand: s,
            per_char: c,
        }
    }

    #[test]
    fn cell_from_report() {
        use dnasim_core::Strand;
        let r: Strand = "ACGT".parse().unwrap();
        let mut report = AccuracyReport::new();
        report.record(&r, &r.clone());
        let c: AccuracyCell = report.into();
        assert_eq!(c.per_strand, 100.0);
        assert_eq!(c.per_char, 100.0);
    }

    #[test]
    fn row_lookup() {
        let row = TableRow {
            label: "Nanopore".into(),
            cells: vec![("bma".into(), cell(29.0, 87.7))],
        };
        assert!(row.cell("bma").is_some());
        assert!(row.cell("iterative").is_none());
    }

    #[test]
    fn table_display_contains_everything() {
        let table = Table {
            title: "Table X".into(),
            rows: vec![TableRow {
                label: "Nanopore".into(),
                cells: vec![
                    ("bma".into(), cell(29.04, 87.74)),
                    ("iterative".into(), cell(66.70, 90.32)),
                ],
            }],
        };
        let text = table.to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("Nanopore"));
        assert!(text.contains("29.04"));
        assert!(text.contains("iterative"));
    }

    #[test]
    fn table_row_lookup() {
        let table = Table {
            title: "t".into(),
            rows: vec![TableRow {
                label: "a".into(),
                cells: vec![],
            }],
        };
        assert!(table.row("a").is_some());
        assert!(table.row("b").is_none());
    }
}
