//! Random access in a shared DNA pool (§1.1.1).
//!
//! DNA storage is not physically organised: all files share one container.
//! Random access follows Yazdi et al. / Bornholt et al.: each file's
//! strands carry a unique primer pair, and PCR *selectively amplifies* the
//! strands whose primer matches — reading one file without sequencing the
//! whole pool. This module simulates that: multiple files are written into
//! one molecule pool, and retrieval amplifies, sequences, reconstructs and
//! decodes only the requested file.

use std::fmt;

use dnasim_channel::stages::{Molecule, MoleculePool, SequencingStage, SynthesisStage};
use dnasim_channel::NaiveModel;
use dnasim_codec::{RsError, StrandLayout, XorParity};
use dnasim_core::rng::SimRng;
use dnasim_core::Strand;
use dnasim_dataset::GroundTruthChannel;
use dnasim_reconstruct::{
    BmaLookahead, Iterative, MajorityVote, TraceReconstructor, TwoWayIterative,
};

/// A multi-file DNA storage pool with primer-based random access.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_pipeline::{FilePool, PoolConfig};
///
/// let mut rng = seeded(11);
/// let mut pool = FilePool::new(PoolConfig::default());
/// pool.store("alpha", b"first file contents".to_vec(), &mut rng)?;
/// pool.store("beta", b"second, different file".to_vec(), &mut rng)?;
///
/// let alpha = pool.retrieve("alpha", &mut rng)?;
/// assert_eq!(&alpha[..], b"first file contents");
/// # Ok::<(), dnasim_pipeline::PoolError>(())
/// ```
#[derive(Debug)]
pub struct FilePool {
    config: PoolConfig,
    files: Vec<StoredFile>,
    pool: MoleculePool,
}

/// Configuration of the shared pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// RS codeword length per strand payload.
    pub rs_codeword_len: usize,
    /// RS data bytes per strand payload.
    pub rs_data_len: usize,
    /// XOR parity group size.
    pub parity_group: usize,
    /// Reads drawn per strand of the *amplified* file during retrieval.
    pub reads_per_strand: usize,
    /// PCR selectivity: amplification factor for matching strands relative
    /// to non-matching ones.
    pub amplification_factor: f64,
    /// Primer mismatches tolerated when classifying reads.
    pub primer_mismatch_budget: usize,
    /// Sequencing aggregate error rate.
    pub sequencing_error_rate: f64,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            rs_codeword_len: 32,
            rs_data_len: 16,
            parity_group: 4,
            reads_per_strand: 20,
            amplification_factor: 800.0,
            primer_mismatch_budget: 3,
            sequencing_error_rate: 0.03,
        }
    }
}

#[derive(Debug)]
struct StoredFile {
    name: String,
    layout: StrandLayout,
    byte_len: usize,
    payload_chunks: usize,
}

/// Errors from pool operations.
#[derive(Debug)]
pub enum PoolError {
    /// Layout construction failed.
    Layout(RsError),
    /// No file with that name exists.
    UnknownFile {
        /// The requested name.
        name: String,
    },
    /// The file could not be reassembled after retrieval.
    Unrecoverable {
        /// The file that failed.
        name: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Layout(e) => write!(f, "layout construction failed: {e}"),
            PoolError::UnknownFile { name } => write!(f, "no file named '{name}' in the pool"),
            PoolError::Unrecoverable { name } => {
                write!(f, "file '{name}' could not be recovered from the pool")
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl FilePool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> FilePool {
        FilePool {
            config,
            files: Vec::new(),
            pool: MoleculePool::new(),
        }
    }

    /// Names of the stored files.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.iter().map(|f| f.name.as_str()).collect()
    }

    /// Total molecule species in the shared container.
    pub fn species_count(&self) -> usize {
        self.pool.species_count()
    }

    /// Writes a file into the pool: encode with a fresh primer pair,
    /// synthesize, and mix the molecules into the shared container.
    ///
    /// # Errors
    ///
    /// [`PoolError::Layout`] for invalid RS parameters.
    pub fn store(
        &mut self,
        name: &str,
        data: Vec<u8>,
        rng: &mut SimRng,
    ) -> Result<(), PoolError> {
        let layout = StrandLayout::new(
            self.config.rs_codeword_len,
            self.config.rs_data_len,
            rng,
        )
        .map_err(PoolError::Layout)?;
        let parity = XorParity::new(self.config.parity_group);
        let chunk = layout.payload_bytes();
        let mut chunks: Vec<Vec<u8>> = data.chunks(chunk).map(<[u8]>::to_vec).collect();
        if chunks.is_empty() {
            chunks.push(vec![0u8; chunk]);
        }
        if let Some(last) = chunks.last_mut() {
            last.resize(chunk, 0);
        }
        let payload_chunks = chunks.len();
        let protected = parity.protect(&chunks);
        let flat: Vec<u8> = protected.iter().flatten().copied().collect();
        let references = layout.encode_file(&flat);

        // Synthesize into the *shared* pool; molecule origins are offset by
        // the file index so clusters stay attributable.
        let synth = SynthesisStage {
            error_model: NaiveModel::new(0.0002, 0.0004, 0.0004),
            variants_per_reference: 10,
            dropout_probability: 0.001,
            mean_abundance: 20.0,
        };
        let file_molecules = synth.run(&references, rng);
        let file_index = self.files.len();
        for m in file_molecules.molecules() {
            self.pool.push(Molecule {
                // Tag the origin with the file index in the high bits.
                origin: file_index << 32 | m.origin,
                strand: m.strand.clone(),
                abundance: m.abundance,
            });
        }
        self.files.push(StoredFile {
            name: name.to_owned(),
            layout,
            byte_len: data.len(),
            payload_chunks,
        });
        Ok(())
    }

    /// Reads one file back: PCR-amplify its primer, sequence the amplified
    /// pool, discard reads that don't match the primer, cluster by strand
    /// index, reconstruct, and decode.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownFile`] for an unknown name;
    /// [`PoolError::Unrecoverable`] if decoding fails.
    pub fn retrieve(&self, name: &str, rng: &mut SimRng) -> Result<Vec<u8>, PoolError> {
        let (file_index, file) = self
            .files
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .ok_or_else(|| PoolError::UnknownFile {
                name: name.to_owned(),
            })?;

        // Selective PCR: strands whose head matches the file's primer are
        // amplified; everything else stays at baseline abundance.
        let mut amplified = MoleculePool::new();
        for m in self.pool.molecules() {
            let matches = file
                .layout
                .matches_primer(&m.strand, self.config.primer_mismatch_budget);
            amplified.push(Molecule {
                origin: m.origin,
                strand: m.strand.clone(),
                abundance: if matches {
                    m.abundance * self.config.amplification_factor
                } else {
                    m.abundance
                },
            });
        }

        // Sequence the amplified pool. We cannot use SequencingStage's
        // per-reference grouping directly (origins are tagged), so sample
        // reads and group by decoded strand coordinates below.
        let strand_count = file.payload_chunks
            + file.payload_chunks.div_ceil(self.config.parity_group);
        let total_reads = strand_count * self.config.reads_per_strand;
        let channel = GroundTruthChannel::new(
            self.config.sequencing_error_rate,
            file.layout.strand_len(),
        );
        let sequencing = SequencingStage {
            error_model: channel,
            total_reads,
        };
        // Group molecules of the amplified pool by their tagged origin so
        // reads arrive clustered per reference strand of *some* file.
        let mut references: Vec<Strand> = Vec::new();
        let mut origin_of: Vec<usize> = Vec::new();
        {
            let mut seen = std::collections::HashMap::new();
            for m in amplified.molecules() {
                seen.entry(m.origin).or_insert_with(|| {
                    references.push(m.strand.clone());
                    origin_of.push(m.origin);
                    references.len() - 1
                });
            }
        }
        // Re-tag the amplified pool into dense reference indices.
        let mut dense = MoleculePool::new();
        {
            let mut index_of = std::collections::HashMap::new();
            for (i, &origin) in origin_of.iter().enumerate() {
                index_of.insert(origin, i);
            }
            for m in amplified.molecules() {
                dense.push(Molecule {
                    origin: index_of[&m.origin],
                    strand: m.strand.clone(),
                    abundance: m.abundance,
                });
            }
        }
        let dataset = sequencing.run(&dense, &references, rng);

        // Keep only clusters whose reads match this file's primer, then
        // reconstruct and decode.
        let ensemble: Vec<Box<dyn TraceReconstructor>> = vec![
            Box::new(TwoWayIterative::default()),
            Box::new(Iterative::default()),
            Box::new(BmaLookahead::default()),
            Box::new(MajorityVote),
        ];
        let mut received: Vec<Option<Vec<u8>>> =
            vec![None; XorParity::new(self.config.parity_group).protected_len(file.payload_chunks)];
        for (cluster, &origin) in dataset.iter().zip(&origin_of) {
            if origin >> 32 != file_index || cluster.is_erasure() {
                continue;
            }
            let mut decoded = None;
            for algorithm in &ensemble {
                let estimate =
                    algorithm.reconstruct(cluster.reads(), file.layout.strand_len());
                if let Ok(hit) = file.layout.decode_strand(&estimate) {
                    decoded = Some(hit);
                    break;
                }
            }
            if decoded.is_none() {
                decoded = cluster
                    .reads()
                    .iter()
                    .find_map(|read| file.layout.decode_strand(read).ok());
            }
            if let Some((index, bytes)) = decoded {
                let slot = index as usize;
                if slot < received.len() && received[slot].is_none() {
                    received[slot] = Some(bytes);
                }
            }
        }
        let parity = XorParity::new(self.config.parity_group);
        parity.recover(&mut received).map_err(|_| PoolError::Unrecoverable {
            name: name.to_owned(),
        })?;
        let mut out = Vec::with_capacity(file.byte_len);
        for slot in received.iter().take(file.payload_chunks) {
            match slot {
                Some(bytes) => out.extend_from_slice(bytes),
                None => {
                    return Err(PoolError::Unrecoverable {
                        name: name.to_owned(),
                    })
                }
            }
        }
        out.truncate(file.byte_len.max(1));
        Ok(out)
    }

    /// Fraction of sequenced reads that belong to `name`'s file when the
    /// pool is sequenced *without* amplification — how lost a file is in
    /// the shared container (the §1.1.1 motivation for PCR selectivity).
    pub fn baseline_share(&self, name: &str) -> Result<f64, PoolError> {
        let file_index = self
            .files
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| PoolError::UnknownFile {
                name: name.to_owned(),
            })?;
        let total: f64 = self.pool.total_abundance();
        if total <= 0.0 {
            return Ok(0.0);
        }
        let mut matching = 0.0;
        for m in self.pool.molecules() {
            if m.origin >> 32 == file_index {
                matching += m.abundance;
            }
        }
        Ok(matching / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn two_files_round_trip_independently() {
        let mut rng = seeded(1);
        let mut pool = FilePool::new(PoolConfig::default());
        let alpha: Vec<u8> = (0u8..120).collect();
        let beta: Vec<u8> = (0u8..90).rev().collect();
        pool.store("alpha", alpha.clone(), &mut rng).unwrap();
        pool.store("beta", beta.clone(), &mut rng).unwrap();
        assert_eq!(pool.file_names(), vec!["alpha", "beta"]);

        assert_eq!(pool.retrieve("alpha", &mut rng).unwrap(), alpha);
        assert_eq!(pool.retrieve("beta", &mut rng).unwrap(), beta);
    }

    #[test]
    fn unknown_file_is_reported() {
        let mut rng = seeded(2);
        let pool = FilePool::new(PoolConfig::default());
        assert!(matches!(
            pool.retrieve("ghost", &mut rng),
            Err(PoolError::UnknownFile { .. })
        ));
    }

    #[test]
    fn baseline_share_shrinks_as_pool_grows() {
        let mut rng = seeded(3);
        let mut pool = FilePool::new(PoolConfig::default());
        pool.store("target", vec![7u8; 64], &mut rng).unwrap();
        let alone = pool.baseline_share("target").unwrap();
        for i in 0..4 {
            pool.store(&format!("noise-{i}"), vec![i as u8; 256], &mut rng)
                .unwrap();
        }
        let crowded = pool.baseline_share("target").unwrap();
        assert!(alone > 0.9);
        assert!(
            crowded < alone / 2.0,
            "share should shrink: {alone} -> {crowded}"
        );
    }

    #[test]
    fn retrieval_still_works_in_a_crowded_pool() {
        let mut rng = seeded(4);
        let mut pool = FilePool::new(PoolConfig::default());
        let target: Vec<u8> = (0u8..100).collect();
        pool.store("target", target.clone(), &mut rng).unwrap();
        for i in 0..5 {
            pool.store(&format!("other-{i}"), vec![0x55u8 + i; 150], &mut rng)
                .unwrap();
        }
        assert_eq!(pool.retrieve("target", &mut rng).unwrap(), target);
    }
}
