//! The paper's experiments, runnable end-to-end.
//!
//! [`Experiments`] owns the "real" dataset (the Nanopore twin), the learned
//! error model, and a seed sequence, and exposes one method per table /
//! figure. The `repro` harness and the CLI only format what these return.

use dnasim_channel::{
    CoverageModel, DnaSimulatorModel, ErrorModel, KeoliyaModel, ParametricModel, Simulator,
    SimulatorLayer, SpatialDistribution,
};
use dnasim_core::rng::{SeedSequence, SimRng};
use dnasim_core::{
    Batch, Cluster, ClusterSink, Dataset, DnasimError, EditOp, Strand, WindowStats,
};
use dnasim_metrics::PositionalProfile;
use dnasim_par::ThreadPool;
use dnasim_profile::{edit_script_with, EditScratch, ErrorStats, LearnedModel, TieBreak};
use dnasim_reconstruct::{
    BmaLookahead, DividerBma, Iterative, MsaReconstructor, TraceReconstructor, TwoWayIterative,
    WeightedIterative,
};
use dnasim_dataset::NanoporeTwinConfig;

use crate::evaluate::{
    evaluate_reconstruction, fixed_coverage_protocol, post_reconstruction_profiles,
    pre_reconstruction_profiles,
};
use crate::table::{AccuracyCell, Table, TableRow};

/// Maximum number of reads fed to the profiler when learning the model
/// (keeps `Experiments::new` fast at paper scale without biasing the
/// statistics — reads are homogeneous across clusters).
const PROFILE_READ_CAP: usize = 40_000;

/// Minimum real coverage required by the fixed-coverage protocol (§3.2
/// discards clusters with fewer than 10 reads).
const PROTOCOL_MIN_COVERAGE: usize = 10;

/// Clusters per window when streaming the twin through the profiler.
const GENERATE_BATCH: usize = 256;

/// Accumulates the twin *and* learns the error model in one streaming
/// pass: each batch is profiled as it arrives (until [`PROFILE_READ_CAP`])
/// and then appended to the dataset, so model learning never waits for —
/// or re-traverses — the fully materialised twin.
///
/// Clusters and reads are visited in exactly the order the old two-phase
/// code (generate, then iterate) visited them, so the profiler's RNG
/// stream and the learned statistics are byte-identical.
struct ProfilingTee {
    clusters: Vec<Cluster>,
    stats: ErrorStats,
    rng: SimRng,
    scratch: EditScratch,
    seen: usize,
}

impl ClusterSink for ProfilingTee {
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        for cluster in batch.into_clusters() {
            if self.seen < PROFILE_READ_CAP {
                for read in cluster.reads() {
                    self.stats.record_pair_with(
                        &mut self.scratch,
                        cluster.reference(),
                        read,
                        TieBreak::Random,
                        &mut self.rng,
                    );
                    self.seen += 1;
                    if self.seen >= PROFILE_READ_CAP {
                        break;
                    }
                }
            }
            self.clusters.push(cluster);
        }
        Ok(())
    }
}

/// The experiment context: twin dataset + learned model + seeds.
#[derive(Debug)]
pub struct Experiments {
    twin: Dataset,
    learned: LearnedModel,
    stats: ErrorStats,
    seeds: SeedSequence,
    generation: WindowStats,
}

impl Experiments {
    /// Generates the twin and learns the simulator parameters from it, in
    /// one streaming pass (each generated window is profiled immediately,
    /// then absorbed into the dataset).
    pub fn new(config: &NanoporeTwinConfig) -> Experiments {
        // Domain-separate the experiment streams from the twin generator's
        // via the named-derive discipline rather than ad-hoc xor arithmetic
        // (see DESIGN.md §9: seed-forking contract).
        let seeds = SeedSequence::new(SeedSequence::new(config.seed).derive("experiments"));
        let mut tee = ProfilingTee {
            clusters: Vec::with_capacity(config.cluster_count),
            stats: ErrorStats::new(),
            rng: seeds.derive_rng("profiler"),
            scratch: EditScratch::new(),
            seen: 0,
        };
        let pool = ThreadPool::from_env();
        let generation = match config.generate_stream(GENERATE_BATCH, &pool, &mut tee) {
            Ok(stats) => stats,
            Err(_) => {
                // A worker died mid-stream: fall back to the serial
                // two-phase path (same bytes, no parallel machinery).
                tee = ProfilingTee {
                    clusters: Vec::new(),
                    stats: ErrorStats::new(),
                    rng: seeds.derive_rng("profiler"),
                    scratch: EditScratch::new(),
                    seen: 0,
                };
                let twin = config.generate();
                let mut stats = WindowStats::default();
                for (start, cluster) in twin.iter().enumerate() {
                    let batch = Batch::new(start, vec![cluster.clone()]);
                    stats.record_window(1, cluster.reads().len());
                    let _ = tee.accept(batch);
                }
                stats
            }
        };
        let twin = Dataset::from_clusters(tee.clusters);
        let learned = LearnedModel::from_stats(&tee.stats, 10);
        Experiments {
            twin,
            learned,
            stats: tee.stats,
            seeds,
            generation,
        }
    }

    /// Window statistics of the streaming twin generation: batches,
    /// cluster high-watermark, and the peak-resident-reads gauge.
    pub fn generation_stats(&self) -> WindowStats {
        self.generation
    }

    /// The "real" dataset (the Nanopore twin).
    pub fn twin(&self) -> &Dataset {
        &self.twin
    }

    /// The model the profiler learned from the twin.
    pub fn learned(&self) -> &LearnedModel {
        &self.learned
    }

    /// The raw profiling statistics.
    pub fn stats(&self) -> &ErrorStats {
        &self.stats
    }

    /// Resimulates the twin with the given model at *custom coverage*
    /// (each simulated cluster gets its real counterpart's coverage).
    pub fn resimulate<M: ErrorModel>(&self, model: M, label: &str) -> Dataset {
        let mut rng = self.seeds.derive_rng(label);
        Simulator::new(model, CoverageModel::Fixed(0)).resimulate_matching(&self.twin, &mut rng)
    }

    /// The layered simulator at `layer`, built from the learned model.
    pub fn keoliya(&self, layer: SimulatorLayer) -> KeoliyaModel {
        KeoliyaModel::new(self.learned.clone(), layer)
    }

    /// **Table 2.1** — per-strand accuracy of BMA / DivBMA / Iterative on
    /// the real data, the naive simulator and DNASimulator at custom
    /// coverage, and DNASimulator at fixed coverage 26.
    pub fn table_2_1(&self) -> Table {
        let algos: Vec<Box<dyn TraceReconstructor>> = vec![
            Box::new(BmaLookahead::default()),
            Box::new(DividerBma),
            Box::new(Iterative::default()),
        ];
        let mut rows = Vec::new();
        let mut push_row = |label: &str, dataset: &Dataset| {
            let cells = algos
                .iter()
                .map(|algo| {
                    (
                        algo.name(),
                        AccuracyCell::from(evaluate_reconstruction(dataset, algo)),
                    )
                })
                .collect();
            rows.push(TableRow {
                label: label.to_owned(),
                cells,
            });
        };

        push_row("Real Nanopore", &self.twin);
        push_row(
            "Naive Simulator",
            &self.resimulate(self.keoliya(SimulatorLayer::Naive), "t2.1-naive"),
        );
        push_row(
            "DNASimulator",
            &self.resimulate(DnaSimulatorModel::nanopore_default(), "t2.1-dnasim"),
        );
        // Fixed coverage 26 for every cluster.
        let fixed = {
            let mut rng = self.seeds.derive_rng("t2.1-dnasim-fixed");
            Simulator::new(
                DnaSimulatorModel::nanopore_default(),
                CoverageModel::Fixed(26),
            )
            .simulate(&self.twin.references(), &mut rng)
        };
        push_row("DNASimulator (26)", &fixed);
        Table {
            title: "Table 2.1: per-strand accuracy on real vs simulated data (custom coverage)"
                .to_owned(),
            rows,
        }
    }

    /// **Table 2.2** — BMA and Iterative accuracy at fixed coverages 5 and
    /// 6 on the real data and DNASimulator.
    pub fn table_2_2(&self) -> Table {
        let mut rows = Vec::new();
        for coverage in [5usize, 6] {
            let real = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, coverage);
            rows.push(self.accuracy_row(&format!("Nanopore (N={coverage})"), &real));
            let sim = self.resimulate(
                DnaSimulatorModel::nanopore_default(),
                &format!("t2.2-dnasim-{coverage}"),
            );
            let sim = fixed_coverage_protocol(&sim, PROTOCOL_MIN_COVERAGE, coverage);
            rows.push(self.accuracy_row(&format!("DNASimulator (N={coverage})"), &sim));
        }
        Table {
            title: "Table 2.2: accuracy at fixed coverage".to_owned(),
            rows,
        }
    }

    /// **Tables 3.1 / 3.2** — the simulator-layer ablation at fixed
    /// coverage `n` (5 for Table 3.1, 6 for Table 3.2): real data, then
    /// each refinement layer of this paper's simulator.
    pub fn ablation_table(&self, coverage: usize) -> Table {
        let mut rows = Vec::new();
        let real = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, coverage);
        rows.push(self.accuracy_row("Nanopore", &real));
        for layer in SimulatorLayer::ALL {
            let sim = self.resimulate(
                self.keoliya(layer),
                &format!("ablation-{}-{coverage}", layer.label()),
            );
            let sim = fixed_coverage_protocol(&sim, PROTOCOL_MIN_COVERAGE, coverage);
            rows.push(self.accuracy_row(layer.label(), &sim));
        }
        Table {
            title: format!(
                "Table 3.{}: simulator-layer ablation at N = {coverage}",
                if coverage == 5 { "1" } else { "2" }
            ),
            rows,
        }
    }

    /// A row with BMA and Iterative (per-strand, per-char) cells.
    fn accuracy_row(&self, label: &str, dataset: &Dataset) -> TableRow {
        let bma = evaluate_reconstruction(dataset, &BmaLookahead::default());
        let iterative = evaluate_reconstruction(dataset, &Iterative::default());
        TableRow {
            label: label.to_owned(),
            cells: vec![
                ("bma".to_owned(), bma.into()),
                ("iterative".to_owned(), iterative.into()),
            ],
        }
    }

    /// **Fig. 3.2** — pre-reconstruction Hamming and gestalt-aligned error
    /// profiles of the real data.
    pub fn fig_3_2(&self) -> (PositionalProfile, PositionalProfile) {
        pre_reconstruction_profiles(&self.twin)
    }

    /// **Fig. 3.3** — Iterative accuracy at coverages `1..=max_coverage`
    /// under the fixed-coverage protocol.
    pub fn coverage_sweep(&self, max_coverage: usize) -> Vec<(usize, AccuracyCell)> {
        (1..=max_coverage)
            .map(|n| {
                let ds = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, n);
                let report = evaluate_reconstruction(&ds, &Iterative::default());
                (n, report.into())
            })
            .collect()
    }

    /// **Figs. 3.4 / C.1** — post-reconstruction profiles of the real data
    /// at the given coverage, for BMA and Iterative. Returns
    /// `[(algorithm, hamming, gestalt); 2]`.
    pub fn post_profiles_real(
        &self,
        coverage: usize,
    ) -> Vec<(String, PositionalProfile, PositionalProfile)> {
        let ds = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, coverage);
        self.post_profiles_for(&ds)
    }

    /// **Figs. 3.5 / C.2 / C.3** — post-reconstruction profiles of
    /// simulated data at the given simulator layer and coverage.
    pub fn post_profiles_simulated(
        &self,
        layer: SimulatorLayer,
        coverage: usize,
    ) -> Vec<(String, PositionalProfile, PositionalProfile)> {
        let sim = self.resimulate(
            self.keoliya(layer),
            &format!("post-profiles-{}-{coverage}", layer.label()),
        );
        let ds = fixed_coverage_protocol(&sim, PROTOCOL_MIN_COVERAGE, coverage);
        self.post_profiles_for(&ds)
    }

    fn post_profiles_for(
        &self,
        dataset: &Dataset,
    ) -> Vec<(String, PositionalProfile, PositionalProfile)> {
        let mut out = Vec::new();
        let bma = BmaLookahead::default();
        let (h, g) = post_reconstruction_profiles(dataset, &bma);
        out.push((bma.name(), h, g));
        let iterative = Iterative::default();
        let (h, g) = post_reconstruction_profiles(dataset, &iterative);
        out.push((iterative.name(), h, g));
        out
    }

    /// **Fig. 3.6** — the top-k second-order errors and their positional
    /// distributions, as learned from the real data.
    pub fn second_order_analysis(&self, k: usize) -> Vec<(EditOp, usize, Vec<usize>)> {
        self.stats
            .top_second_order(k)
            .0
            .into_iter()
            .map(|(op, stat)| (op, stat.count, stat.positional.clone()))
            .collect()
    }

    /// **Figs. 3.7 / 3.8** — post-reconstruction profiles of uniformly
    /// distributed errors at rate `p` and the given coverage.
    pub fn uniform_profiles(
        &self,
        p: f64,
        coverage: usize,
    ) -> Vec<(String, PositionalProfile, PositionalProfile)> {
        let ds = self.parametric_dataset(p, SpatialDistribution::Uniform, coverage);
        self.post_profiles_for(&ds)
    }

    /// **Fig. 3.9** — the pre-reconstruction positional error rates of
    /// A-shaped and V-shaped simulated data at rate `p`, confirming equal
    /// aggregate error with different placement.
    pub fn shaped_pre_profiles(&self, p: f64) -> Vec<(String, PositionalProfile)> {
        [SpatialDistribution::AShaped, SpatialDistribution::VShaped]
            .into_iter()
            .map(|shape| {
                let label = shape.to_string();
                let ds = self.parametric_dataset(p, shape, 5);
                let (_, gestalt) = pre_reconstruction_profiles(&ds);
                (label, gestalt)
            })
            .collect()
    }

    /// **Fig. 3.10** — post-reconstruction BMA profiles on A-shaped vs
    /// V-shaped data at rate `p` and coverage `n`.
    pub fn shaped_bma_profiles(
        &self,
        p: f64,
        coverage: usize,
    ) -> Vec<(String, PositionalProfile, PositionalProfile, AccuracyCell)> {
        [SpatialDistribution::AShaped, SpatialDistribution::VShaped]
            .into_iter()
            .map(|shape| {
                let label = shape.to_string();
                let ds = self.parametric_dataset(p, shape, coverage);
                let bma = BmaLookahead::default();
                let (h, g) = post_reconstruction_profiles(&ds, &bma);
                let acc = evaluate_reconstruction(&ds, &bma);
                (label, h, g, acc.into())
            })
            .collect()
    }

    /// **§3.4.1** — the sensitivity grid: accuracy of BMA and Iterative at
    /// every (error rate, coverage) combination under uniform spatial
    /// distribution, plus the deletion share of Iterative's residual
    /// errors.
    pub fn sensitivity_grid(
        &self,
        rates: &[f64],
        coverages: &[usize],
    ) -> Vec<SensitivityPoint> {
        let mut out = Vec::new();
        for &p in rates {
            for &n in coverages {
                let ds = self.parametric_dataset(p, SpatialDistribution::Uniform, n);
                let bma = evaluate_reconstruction(&ds, &BmaLookahead::default());
                let iterative = evaluate_reconstruction(&ds, &Iterative::default());
                let deletion_share = self.residual_deletion_share(&ds, &Iterative::default());
                out.push(SensitivityPoint {
                    error_rate: p,
                    coverage: n,
                    bma: bma.into(),
                    iterative: iterative.into(),
                    iterative_residual_deletion_share: deletion_share,
                });
            }
        }
        out
    }

    /// **fidelity** — the §3.1 closed-form fidelity distances of every
    /// simulator layer against the real data (complements the
    /// accuracy-based tables).
    pub fn fidelity_by_layer(&self) -> Vec<(String, crate::FidelityReport)> {
        let mut rng = self.seeds.derive_rng("fidelity");
        let mut out = Vec::new();
        for layer in SimulatorLayer::ALL {
            let sim = self.resimulate(self.keoliya(layer), &format!("fidelity-{}", layer.label()));
            let report = crate::simulator_fidelity(&self.twin, &sim, &mut rng);
            out.push((layer.label().to_owned(), report));
        }
        let dnasim = self.resimulate(DnaSimulatorModel::nanopore_default(), "fidelity-dnasim");
        out.push((
            "DNASimulator".to_owned(),
            crate::simulator_fidelity(&self.twin, &dnasim, &mut rng),
        ));
        out
    }

    /// **ext-layers** — extensions beyond the paper's four layers: the
    /// learned homopolymer modulation (its §2.2.3 gap) and the §4.3
    /// full-error-histogram model, appended to the ablation at coverage
    /// `n`.
    pub fn extensions_table(&self, coverage: usize) -> Table {
        use dnasim_channel::FullHistogramModel;
        let mut rows = Vec::new();
        let real = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, coverage);
        rows.push(self.accuracy_row("Nanopore", &real));
        let second = self.resimulate(
            self.keoliya(SimulatorLayer::SecondOrder),
            &format!("ext-layers-second-{coverage}"),
        );
        rows.push(self.accuracy_row(
            "+ 2nd-order Errors",
            &fixed_coverage_protocol(&second, PROTOCOL_MIN_COVERAGE, coverage),
        ));
        let homopolymer = self.resimulate(
            self.keoliya(SimulatorLayer::SecondOrder)
                .with_homopolymer_modulation(),
            &format!("ext-layers-homopolymer-{coverage}"),
        );
        rows.push(self.accuracy_row(
            "+ Homopolymer",
            &fixed_coverage_protocol(&homopolymer, PROTOCOL_MIN_COVERAGE, coverage),
        ));
        let histogram = self.resimulate(
            FullHistogramModel::from_stats(&self.stats),
            &format!("ext-layers-histogram-{coverage}"),
        );
        rows.push(self.accuracy_row(
            "Full histogram",
            &fixed_coverage_protocol(&histogram, PROTOCOL_MIN_COVERAGE, coverage),
        ));
        Table {
            title: format!("Extension layers beyond the paper (N = {coverage})"),
            rows,
        }
    }

    /// **ext-twoway** — the paper's proposed improvement: Iterative vs
    /// Two-Way Iterative on terminally-skewed (real-like) and uniform
    /// data.
    pub fn two_way_comparison(&self, coverage: usize) -> Table {
        let mut rows = Vec::new();
        let algos: Vec<Box<dyn TraceReconstructor>> = vec![
            Box::new(Iterative::default()),
            Box::new(TwoWayIterative::default()),
            Box::new(WeightedIterative::default()),
            Box::new(MsaReconstructor),
            Box::new(BmaLookahead::default()),
        ];
        let mut push_row = |label: &str, ds: &Dataset| {
            let cells = algos
                .iter()
                .map(|a| (a.name(), AccuracyCell::from(evaluate_reconstruction(ds, a))))
                .collect();
            rows.push(TableRow {
                label: label.to_owned(),
                cells,
            });
        };
        let real = fixed_coverage_protocol(&self.twin, PROTOCOL_MIN_COVERAGE, coverage);
        push_row("Nanopore (terminal skew)", &real);
        let skewed = {
            let sim = self.resimulate(
                self.keoliya(SimulatorLayer::SecondOrder),
                &format!("twoway-skewed-{coverage}"),
            );
            fixed_coverage_protocol(&sim, PROTOCOL_MIN_COVERAGE, coverage)
        };
        push_row("Simulated (skewed)", &skewed);
        let uniform = self.parametric_dataset(0.059, SpatialDistribution::Uniform, coverage);
        push_row("Simulated (uniform)", &uniform);
        Table {
            title: format!("Two-way Iterative extension (N = {coverage})"),
            rows,
        }
    }

    /// Simulates a parametric dataset over the twin's references at fixed
    /// coverage `n`.
    fn parametric_dataset(&self, p: f64, shape: SpatialDistribution, n: usize) -> Dataset {
        let label = format!("parametric-{p}-{shape}-{n}");
        let mut rng = self.seeds.derive_rng(&label);
        Simulator::new(ParametricModel::new(p, shape), CoverageModel::Fixed(n))
            .simulate(&self.twin.references(), &mut rng)
    }

    /// Share of residual (post-reconstruction) errors that are deletions,
    /// measured by minimum edit script from reference to estimate.
    fn residual_deletion_share<A: TraceReconstructor>(
        &self,
        dataset: &Dataset,
        algorithm: &A,
    ) -> f64 {
        let mut rng = self.seeds.derive_rng("residual-kinds");
        let mut counts = [0usize; 3];
        let mut scratch = EditScratch::new();
        for cluster in dataset.iter() {
            if cluster.is_erasure() {
                continue;
            }
            let estimate = algorithm.reconstruct(cluster.reads(), cluster.reference().len());
            let script = edit_script_with(
                &mut scratch,
                cluster.reference(),
                &estimate,
                TieBreak::Random,
                &mut rng,
            );
            let kinds = script.error_kind_counts();
            for (c, k) in counts.iter_mut().zip(kinds) {
                *c += k;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        counts[1] as f64 / total as f64 // deletions
    }
}

/// §4.3 multi-dataset robustness: a channel model learned on one dataset
/// should match *that* dataset after resimulation, and the mismatch when
/// transferred to a different technology quantifies how much it memorised
/// rather than generalised.
///
/// Rows: each dataset's real accuracy, in-domain resimulation, and the
/// A-trained model transferred to B.
pub fn cross_dataset_robustness(
    config_a: &NanoporeTwinConfig,
    config_b: &NanoporeTwinConfig,
    coverage: usize,
) -> Table {
    let exp_a = Experiments::new(config_a);
    let exp_b = Experiments::new(config_b);

    let row = |label: &str, ds: &Dataset| -> TableRow {
        let ds = fixed_coverage_protocol(ds, 10, coverage);
        let bma = evaluate_reconstruction(&ds, &BmaLookahead::default());
        let iterative = evaluate_reconstruction(&ds, &Iterative::default());
        TableRow {
            label: label.to_owned(),
            cells: vec![
                ("bma".to_owned(), bma.into()),
                ("iterative".to_owned(), iterative.into()),
            ],
        }
    };

    let sim_a_on_a = exp_a.resimulate(exp_a.keoliya(SimulatorLayer::SecondOrder), "robust-aa");
    let model_a_on_b = KeoliyaModel::new(exp_a.learned().clone(), SimulatorLayer::SecondOrder);
    let sim_a_on_b = exp_b.resimulate(model_a_on_b, "robust-ab");
    let sim_b_on_b = exp_b.resimulate(exp_b.keoliya(SimulatorLayer::SecondOrder), "robust-bb");

    Table {
        title: format!("Cross-dataset robustness (N = {coverage})"),
        rows: vec![
            row("A: real", exp_a.twin()),
            row("A: sim (trained on A)", &sim_a_on_a),
            row("B: real", exp_b.twin()),
            row("B: sim (trained on A)", &sim_a_on_b),
            row("B: sim (trained on B)", &sim_b_on_b),
        ],
    }
}

/// One point of the §3.4.1 sensitivity grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Aggregate error rate p̄.
    pub error_rate: f64,
    /// Coverage N.
    pub coverage: usize,
    /// BMA accuracy.
    pub bma: AccuracyCell,
    /// Iterative accuracy.
    pub iterative: AccuracyCell,
    /// Fraction of Iterative's residual errors that are deletions.
    pub iterative_residual_deletion_share: f64,
}

/// Reference strands from a dataset, exposed for harness reuse.
pub fn references_of(dataset: &Dataset) -> Vec<Strand> {
    dataset.references()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiments {
        let mut config = NanoporeTwinConfig::small();
        config.cluster_count = 60;
        config.erasure_count = 1;
        Experiments::new(&config)
    }

    #[test]
    fn learned_model_captures_twin_statistics() {
        let exp = tiny();
        let learned = exp.learned();
        // Aggregate rate near 5.9%.
        assert!(
            (learned.aggregate_error_rate - 0.059).abs() < 0.02,
            "learned rate {}",
            learned.aggregate_error_rate
        );
        // Terminal spatial skew discovered: ends hotter than the middle.
        assert!(learned.spatial_multiplier(0) > 1.5);
        assert!(learned.spatial_multiplier(109) > 1.5);
        assert!(learned.spatial_multiplier(55) < 1.2);
        // Long deletions discovered.
        assert!(learned.long_deletion.probability > 0.0);
        // Second-order errors retained.
        assert_eq!(learned.second_order.len(), 10);
    }

    #[test]
    fn table_2_1_simulators_overestimate_accuracy() {
        let exp = tiny();
        let table = exp.table_2_1();
        assert_eq!(table.rows.len(), 4);
        let real = table.row("Real Nanopore").unwrap();
        let naive = table.row("Naive Simulator").unwrap();
        // The paper's headline observation: simulated per-strand accuracy
        // exceeds real accuracy for the position-blind simulators.
        for algo in ["bma", "iterative"] {
            let real_acc = real.cell(algo).unwrap().per_strand;
            let naive_acc = naive.cell(algo).unwrap().per_strand;
            assert!(
                naive_acc > real_acc,
                "{algo}: naive {naive_acc} should exceed real {real_acc}"
            );
        }
    }

    #[test]
    fn ablation_layers_converge_toward_real() {
        let exp = tiny();
        let table = exp.ablation_table(5);
        assert_eq!(table.rows.len(), 5);
        let real = table.row("Nanopore").unwrap().cell("bma").unwrap();
        let naive = table.row("Naive Simulator").unwrap().cell("bma").unwrap();
        let skew = table.row("+ Spatial Skew").unwrap().cell("bma").unwrap();
        // Adding spatial skew moves BMA accuracy from the naive level
        // toward (down to) the real level. On this 60-cluster smoke config
        // the layers can tie, so equality is tolerated.
        assert!(naive.per_strand > real.per_strand);
        assert!(
            skew.per_strand <= naive.per_strand + 1e-9,
            "skew {} should not exceed naive {}",
            skew.per_strand,
            naive.per_strand
        );
    }

    #[test]
    fn coverage_sweep_increases_accuracy() {
        let exp = tiny();
        let sweep = exp.coverage_sweep(8);
        assert_eq!(sweep.len(), 8);
        let low = sweep[0].1.per_char;
        let high = sweep[7].1.per_char;
        assert!(high > low, "per-char at N=8 ({high}) !> N=1 ({low})");
    }

    #[test]
    fn fig_3_2_profiles_show_terminal_skew() {
        let exp = tiny();
        let (hamming, gestalt) = exp.fig_3_2();
        assert!(hamming.total_errors() > gestalt.total_errors());
        // Gestalt profile: ends hotter than middle.
        let rates = gestalt.rates();
        let mid = rates[40..70].iter().sum::<f64>() / 30.0;
        assert!(rates[0] > 2.0 * mid);
        assert!(rates[109] > 2.0 * mid);
        // End roughly 2× the start (allowing sampling noise).
        assert!(rates[109] > 1.2 * rates[0]);
    }

    #[test]
    fn second_order_analysis_returns_k_entries() {
        let exp = tiny();
        let top = exp.second_order_analysis(10);
        assert_eq!(top.len(), 10);
        // Ranked descending.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        // The twin's engineered skews should surface: some top error is an
        // insertion of A or a T→C substitution.
        use dnasim_core::Base;
        assert!(top.iter().any(|(op, _, _)| matches!(
            op,
            EditOp::Insert(Base::A)
                | EditOp::Subst {
                    orig: Base::T,
                    new: Base::C
                }
        )));
    }

    #[test]
    fn shaped_profiles_have_equal_aggregate() {
        let exp = tiny();
        let profiles = exp.shaped_pre_profiles(0.15);
        assert_eq!(profiles.len(), 2);
        let a_total = profiles[0].1.total_errors() as f64 / profiles[0].1.comparisons() as f64;
        let v_total = profiles[1].1.total_errors() as f64 / profiles[1].1.comparisons() as f64;
        assert!(
            (a_total - v_total).abs() / a_total < 0.1,
            "A {a_total} vs V {v_total}"
        );
    }

    #[test]
    fn bma_prefers_a_shape() {
        let exp = tiny();
        let shaped = exp.shaped_bma_profiles(0.15, 6);
        let a = &shaped[0];
        let v = &shaped[1];
        assert_eq!(a.0, "A-shaped");
        assert!(
            a.3.per_char > v.3.per_char,
            "BMA should prefer A-shaped: {} vs {}",
            a.3.per_char,
            v.3.per_char
        );
    }

    #[test]
    fn two_way_rescues_iterative_under_skew() {
        let exp = tiny();
        let table = exp.two_way_comparison(6);
        let real = table.row("Nanopore (terminal skew)").unwrap();
        let one_way = real.cell("iterative").unwrap();
        let two_way = real.cell("iterative-twoway").unwrap();
        assert!(
            two_way.per_char >= one_way.per_char,
            "two-way {} !>= one-way {}",
            two_way.per_char,
            one_way.per_char
        );
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    /// §4.3: a model learned on dataset A must not silently transfer to a
    /// different technology B — the in-domain simulator should always be
    /// closer to its own dataset than the transferred one.
    #[test]
    fn transfer_gap_exceeds_in_domain_gap() {
        let mut config_a = NanoporeTwinConfig::small();
        config_a.cluster_count = 60;
        let mut config_b = NanoporeTwinConfig::high_error_variant();
        config_b.cluster_count = 60;
        config_b.erasure_count = 1;
        let table = cross_dataset_robustness(&config_a, &config_b, 5);
        assert_eq!(table.rows.len(), 5);
        let real_b = table.row("B: real").unwrap().cell("bma").unwrap().per_strand;
        let transfer = table
            .row("B: sim (trained on A)")
            .unwrap()
            .cell("bma")
            .unwrap()
            .per_strand;
        let in_domain = table
            .row("B: sim (trained on B)")
            .unwrap()
            .cell("bma")
            .unwrap()
            .per_strand;
        assert!(
            (in_domain - real_b).abs() < (transfer - real_b).abs(),
            "in-domain {in_domain} should be closer to real {real_b} than transfer {transfer}"
        );
    }
}
