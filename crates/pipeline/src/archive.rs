//! The full write→store→read archival pipeline, end to end.
//!
//! Composes every substrate in the workspace: codec (layout + RS + XOR
//! parity) → multi-stage channel (synthesis, decay, PCR, sequencing) →
//! clustering → trace reconstruction → decode. This is the "downstream
//! user" path: store a byte buffer in simulated DNA and get it back.

use std::fmt;

use dnasim_channel::stages::{DecayStage, PcrStage, SequencingStage, SynthesisStage};
use dnasim_channel::NaiveModel;
use dnasim_cluster::{GreedyClusterer, StreamingClusterer};
use dnasim_codec::{LayoutError, OuterRsCode, RecoveryOutcome, RsError, StrandLayout, XorParity};
use dnasim_core::rng::{RngExt, SeedSequence, SimRng};
use dnasim_core::{Budget, Cluster, DnasimError, Strand, WindowStats};
use dnasim_dataset::GroundTruthChannel;
use dnasim_par::{PoolError, ThreadPool};
use dnasim_reconstruct::{
    BmaLookahead, Iterative, MajorityVote, TraceReconstructor, TwoWayIterative,
};

/// Strand-level erasure protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErasureScheme {
    /// XOR parity: one parity strand per group, recovers one loss.
    Xor {
        /// Payload strands per parity group.
        group: usize,
    },
    /// Outer Reed–Solomon across strands: `total − payload` parity strands
    /// per group, recovering that many losses.
    OuterRs {
        /// Total strands per group (payload + parity).
        total: usize,
        /// Payload strands per group.
        payload: usize,
    },
}

/// How the read path reacts when a cluster cannot be decoded even after
/// erasure recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArchiveMode {
    /// Abort the round trip with [`ArchiveError::Unrecoverable`] — the
    /// historical behaviour, right when any data loss is unacceptable.
    #[default]
    Strict,
    /// Degrade gracefully: quarantine undecodable clusters as erasures,
    /// recover every group within the outer code's budget, zero-fill the
    /// rest, and report the damage in the [`ArchiveReport`] instead of
    /// failing.
    Lenient,
}

/// Configuration of the end-to-end archival simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveConfig {
    /// Reed–Solomon codeword length per strand payload.
    pub rs_codeword_len: usize,
    /// Reed–Solomon data bytes per strand payload.
    pub rs_data_len: usize,
    /// Strand-level erasure protection.
    pub erasure: ErasureScheme,
    /// Total sequencing reads drawn from the molecule pool.
    pub sequencing_reads_per_strand: usize,
    /// Storage duration in years.
    pub storage_years: f64,
    /// Whether to run the real greedy clusterer over a shuffled pool
    /// (imperfect clustering) instead of perfect clustering.
    pub imperfect_clustering: bool,
    /// Reaction to unrecoverable clusters: abort or degrade gracefully.
    pub mode: ArchiveMode,
}

impl Default for ArchiveConfig {
    fn default() -> ArchiveConfig {
        ArchiveConfig {
            rs_codeword_len: 32,
            rs_data_len: 16,
            erasure: ErasureScheme::Xor { group: 4 },
            sequencing_reads_per_strand: 20,
            storage_years: 100.0,
            imperfect_clustering: false,
            mode: ArchiveMode::Strict,
        }
    }
}

/// Outcome of one archival round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveReport {
    /// The recovered payload.
    pub data: Vec<u8>,
    /// Strands synthesized (payload + parity).
    pub strands_written: usize,
    /// Reads sequenced.
    pub reads_sequenced: usize,
    /// Strands that had to be recovered via XOR parity.
    pub strands_recovered_by_parity: usize,
    /// Strand slots with no decodable cluster, quarantined as erasures and
    /// handed to the outer code.
    pub clusters_quarantined: usize,
    /// The degradation budget: erased strands the outer code can absorb
    /// per parity group before data is lost.
    pub loss_budget_per_group: usize,
    /// Parity groups whose quarantined strands exceeded the budget.
    pub groups_exceeding_budget: usize,
    /// Payload strands still missing after erasure recovery. Zero-filled
    /// in [`ArchiveMode::Lenient`]; [`ArchiveMode::Strict`] aborts instead.
    pub strands_unrecovered: usize,
}

impl ArchiveReport {
    /// True when the returned `data` is incomplete (some payload strands
    /// were zero-filled because the degradation budget was exceeded).
    pub fn is_degraded(&self) -> bool {
        self.strands_unrecovered > 0
    }
}

/// Errors from the archival round trip.
#[derive(Debug)]
pub enum ArchiveError {
    /// Layout construction failed.
    Layout(RsError),
    /// Decoding failed even after parity recovery.
    Unrecoverable(LayoutError),
    /// A thread-pool worker panicked during parallel decoding.
    Worker(PoolError),
    /// The work budget's cancellation token was raised mid-decode (budget
    /// *exhaustion* does not take this path: it quarantines the undecoded
    /// remainder and lets erasure recovery absorb the damage).
    Cancelled(DnasimError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Layout(e) => write!(f, "layout construction failed: {e}"),
            ArchiveError::Unrecoverable(e) => write!(f, "file unrecoverable: {e}"),
            ArchiveError::Worker(e) => write!(f, "parallel decode failed: {e}"),
            ArchiveError::Cancelled(e) => write!(f, "archive cancelled: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<ArchiveError> for DnasimError {
    fn from(e: ArchiveError) -> DnasimError {
        match e {
            ArchiveError::Layout(err) => DnasimError::config("archive", err.to_string()),
            ArchiveError::Unrecoverable(err) => DnasimError::codec(err.to_string()),
            ArchiveError::Worker(err) => DnasimError::from(err),
            ArchiveError::Cancelled(err) => err,
        }
    }
}

/// Tries every reconstructor in `ensemble` (then raw reads as a last
/// resort) to decode one cluster into a `(strand index, payload bytes)`
/// pair. Pure: safe to fan out across workers without changing results.
fn decode_cluster(
    cluster: &Cluster,
    ensemble: &[Box<dyn TraceReconstructor + Send + Sync>],
    layout: &StrandLayout,
) -> Option<(u32, Vec<u8>)> {
    if cluster.is_erasure() {
        return None;
    }
    for algorithm in ensemble {
        let estimate = algorithm.reconstruct(cluster.reads(), layout.strand_len());
        if let Ok(hit) = layout.decode_strand(&estimate) {
            return Some(hit);
        }
    }
    // Last resort: an individual read that happened to avoid indels
    // decodes directly through RS even when every consensus carries a
    // shift.
    cluster
        .reads()
        .iter()
        .find_map(|read| layout.decode_strand(read).ok())
}

/// Stores `data` in simulated DNA and reads it back.
///
/// # Errors
///
/// [`ArchiveError`] if the layout is invalid or the file cannot be
/// recovered even after RS correction and parity recovery.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_pipeline::{archive_round_trip, ArchiveConfig};
///
/// let mut rng = seeded(7);
/// let data: Vec<u8> = (0..200u8).collect();
/// let report = archive_round_trip(&data, &ArchiveConfig::default(), &mut rng)?;
/// assert_eq!(&report.data[..data.len()], &data[..]);
/// # Ok::<(), dnasim_pipeline::ArchiveError>(())
/// ```
pub fn archive_round_trip(
    data: &[u8],
    config: &ArchiveConfig,
    rng: &mut SimRng,
) -> Result<ArchiveReport, ArchiveError> {
    archive_round_trip_on(data, config, rng, &ThreadPool::serial())
}

/// [`archive_round_trip`] with per-cluster decoding fanned out on `pool`.
///
/// Only the pure reconstruct-and-decode stage is parallelised; every
/// RNG-driven channel stage stays serial, and decoded strands are merged
/// into their slots in cluster order. The report is therefore byte-identical
/// to [`archive_round_trip`] for any thread count.
///
/// # Errors
///
/// Everything [`archive_round_trip`] returns, plus [`ArchiveError::Worker`]
/// if a pool worker panicked.
pub fn archive_round_trip_on(
    data: &[u8],
    config: &ArchiveConfig,
    rng: &mut SimRng,
    workers: &ThreadPool,
) -> Result<ArchiveReport, ArchiveError> {
    archive_round_trip_windowed(data, config, rng, workers, usize::MAX, &Budget::unlimited())
        .map(|(report, _)| report)
}

/// [`archive_round_trip_on`] with the reconstruct-and-decode stage run
/// over a bounded window of at most `batch_size` clusters at a time.
///
/// The channel stages still materialise the molecule pool (PCR amplifies
/// a shared population, so those stages are inherently whole-pool), but
/// the decode stage — the expensive one — holds only `batch_size`
/// clusters' worth of estimates in flight, merging decoded strands into
/// their slots in cluster order. The report is byte-identical to
/// [`archive_round_trip_on`] for every batch size and thread count; the
/// returned [`WindowStats`] exposes the decode window's high-watermark
/// for tests to audit.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`, plus everything
/// [`archive_round_trip_on`] reports (converted into [`DnasimError`]).
pub fn archive_round_trip_stream(
    data: &[u8],
    config: &ArchiveConfig,
    rng: &mut SimRng,
    workers: &ThreadPool,
    batch_size: usize,
) -> Result<(ArchiveReport, WindowStats), DnasimError> {
    archive_round_trip_stream_budgeted(data, config, rng, workers, batch_size, &Budget::unlimited())
}

/// [`archive_round_trip_stream`] metered by a [`Budget`]: one work unit
/// per decode attempt (the expensive stage), admitted in the serial
/// window loop.
///
/// Budget *exhaustion* does not abort the round trip — the archive layer
/// already has a vocabulary for partial results, so undecoded clusters
/// are quarantined as erasures and handed to the outer code, exactly as
/// if the channel had destroyed them: within the redundancy budget the
/// payload still comes back intact; beyond it, lenient mode reports
/// degradation and strict mode fails with the existing `Unrecoverable`
/// error. Cancellation, by contrast, returns
/// [`DnasimError::DeadlineExceeded`] at the next window boundary. Both
/// cut points are deterministic at any batch size or thread count.
///
/// # Errors
///
/// [`DnasimError::DeadlineExceeded`] on cancellation, plus everything
/// [`archive_round_trip_stream`] reports.
pub fn archive_round_trip_stream_budgeted(
    data: &[u8],
    config: &ArchiveConfig,
    rng: &mut SimRng,
    workers: &ThreadPool,
    batch_size: usize,
    budget: &Budget,
) -> Result<(ArchiveReport, WindowStats), DnasimError> {
    if batch_size == 0 {
        return Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ));
    }
    archive_round_trip_windowed(data, config, rng, workers, batch_size, budget)
        .map_err(DnasimError::from)
}

fn archive_round_trip_windowed(
    data: &[u8],
    config: &ArchiveConfig,
    rng: &mut SimRng,
    workers: &ThreadPool,
    batch_size: usize,
    budget: &Budget,
) -> Result<(ArchiveReport, WindowStats), ArchiveError> {
    // --- Encode: chunk → RS payload → strands; protect groups with XOR. ---
    let layout = StrandLayout::new(config.rs_codeword_len, config.rs_data_len, rng)
        .map_err(ArchiveError::Layout)?;
    let payload_chunks: Vec<Vec<u8>> = {
        let chunk = layout.payload_bytes();
        let mut chunks: Vec<Vec<u8>> =
            data.chunks(chunk).map(<[u8]>::to_vec).collect();
        if chunks.is_empty() {
            chunks.push(vec![0; chunk]);
        }
        if let Some(last) = chunks.last_mut() {
            last.resize(chunk, 0);
        }
        chunks
    };
    let protected = match config.erasure {
        ErasureScheme::Xor { group } => XorParity::new(group).protect(&payload_chunks),
        ErasureScheme::OuterRs { total, payload } => OuterRsCode::new(total, payload)
            .map_err(|_| {
                ArchiveError::Layout(RsError::InvalidParameters { n: total, k: payload })
            })?
            .protect(&payload_chunks),
    };
    // Flatten the protected chunks into one logical byte stream and let the
    // layout index the strands.
    let flat: Vec<u8> = protected.iter().flatten().copied().collect();
    let references = layout.encode_file(&flat);

    // --- Channel: synthesis → decay → PCR → sequencing, sharded per
    // strand group. ---
    // Realistic synthesis: error rate a few 1e-4 per base, and enough
    // distinct molecule variants that no single erroneous molecule can
    // dominate the sequenced consensus after PCR bias. Every stage up to
    // sequencing touches no cross-reference state, so each group's slice
    // of the molecule pool is generated on demand from an RNG forked by
    // group index — the pool as a whole never exists in memory.
    let synthesis = SynthesisStage {
        error_model: NaiveModel::new(0.0002, 0.0004, 0.0004),
        variants_per_reference: 12,
        dropout_probability: 0.002,
        mean_abundance: 20.0,
    };
    let decay = DecayStage {
        years: config.storage_years,
        half_life_years: 500.0,
        loss_threshold: 1e-6,
    };
    let pcr = PcrStage {
        cycles: 12,
        efficiency: 0.85,
        bias_sigma: 0.05,
        substitution_rate: 0.0002,
    };
    let sequencing = SequencingStage {
        error_model: GroundTruthChannel::new(0.03, layout.strand_len()),
        total_reads: references.len() * config.sequencing_reads_per_strand,
    };
    let seeds = SeedSequence::new(rng.random::<u64>());
    let channel_seeds = SeedSequence::new(seeds.derive("channel"));
    let sample_seeds = SeedSequence::new(seeds.derive("sample"));
    // One group's molecules, regenerated identically on every call: a pure
    // function of the group index, so windows can be revisited (weights
    // pass, then sampling pass) without ever holding the whole pool.
    let group_pool = |g: usize| {
        let mut grng = channel_seeds.fork_rng(g as u64);
        let pool = synthesis.run_group(g, &references[g], &mut grng);
        let pool = decay.run(&pool);
        pcr.run(&pool, &mut grng)
    };
    let refs_len = references.len();
    let window_len = batch_size.min(refs_len.max(1));

    // Pass 0: per-group total abundance, windowed — O(references) scalars
    // resident, never the molecules themselves. The global read budget is
    // then split across groups by the same categorical draw the whole-pool
    // sampler made, collapsed to group granularity.
    let mut group_weights = vec![0.0f64; refs_len];
    let mut start = 0usize;
    while start < refs_len {
        let len = window_len.min(refs_len - start);
        let weights = workers
            .par_map_len(len, |i| group_pool(start + i).total_abundance())
            .map_err(ArchiveError::Worker)?;
        group_weights[start..start + len].copy_from_slice(&weights);
        start += len;
    }
    let read_counts =
        sequencing.allocate_reads(&group_weights, &mut seeds.derive_rng("allocate"));
    // One group's sequenced reads, again a pure function of the group
    // index — the imperfect path regenerates them for its second pass.
    let sample_reads = |g: usize| {
        sequencing.sample_group(&group_pool(g), read_counts[g], &mut sample_seeds.fork_rng(g as u64))
    };

    // --- Reconstruct and decode every cluster. ---
    // Different reconstructors leave *different* residual indels, and an
    // indel shifts every downstream payload symbol, so a strand one
    // algorithm cannot deliver is often decodable from another's estimate.
    // Try an ensemble and keep the first estimate that passes RS.
    let ensemble: Vec<Box<dyn TraceReconstructor + Send + Sync>> = vec![
        Box::new(TwoWayIterative::default()),
        Box::new(Iterative::default()),
        Box::new(BmaLookahead::default()),
        Box::new(MajorityVote),
    ];
    let chunk = layout.payload_bytes();
    // Decode over a bounded window: at most `batch_size` clusters'
    // estimates exist at once, and each window merges serially in cluster
    // order (first-wins per slot) so quarantine counts and recovered
    // bytes are independent of both worker scheduling and batch size.
    let mut received: Vec<Option<Vec<u8>>> = vec![None; protected.len()];
    let mut window = WindowStats::default();
    // Decodes one window of clusters, budget-metered (one unit per decode
    // attempt). Returns the admitted count; an admitted count below the
    // window length means the budget ran dry — the caller stops decoding
    // and the remaining clusters stay quarantined for erasure recovery.
    let decode_window = |clusters: &[Cluster],
                             resident_reads_now: usize,
                             window: &mut WindowStats,
                             received: &mut Vec<Option<Vec<u8>>>|
     -> Result<usize, ArchiveError> {
        budget.check("decode").map_err(ArchiveError::Cancelled)?;
        let (decoded, admitted) = workers
            .par_map_admitted(budget, clusters, |_, cluster| {
                decode_cluster(cluster, &ensemble, &layout)
            })
            .map_err(ArchiveError::Worker)?;
        if admitted > 0 {
            window.record_window(admitted, resident_reads_now);
        }
        for (index, bytes) in decoded.into_iter().flatten() {
            // Each strand carries `chunk` bytes of the flat protected
            // stream; the strand index orders them.
            let slot = index as usize;
            if slot < received.len() && received[slot].is_none() {
                received[slot] = Some(bytes);
            }
        }
        Ok(admitted)
    };

    let reads_sequenced: usize;
    if config.imperfect_clustering {
        // Pass A: stream the reads (group-major, window by window) through
        // the online clusterer. Groups are matched to references at
        // founding time, so every read's reference is known the moment it
        // is pushed; only the per-read reference index (not the read) is
        // kept, plus per-reference expected counts. The clusterer itself
        // holds per-group representatives only.
        let clusterer_config = GreedyClusterer::default();
        let mut clusterer = StreamingClusterer::with_references(clusterer_config, &references);
        let mut assignments: Vec<Option<u32>> = Vec::new();
        let mut expected = vec![0usize; refs_len];
        let mut start = 0usize;
        while start < refs_len {
            let len = window_len.min(refs_len - start);
            let reads_per_group = workers
                .par_map_len(len, |i| sample_reads(start + i))
                .map_err(ArchiveError::Worker)?;
            for group_reads in &reads_per_group {
                for read in group_reads {
                    let matched = clusterer.push(read).reference;
                    assignments.push(matched.map(|r| r as u32));
                    if let Some(r) = matched {
                        expected[r] += 1;
                    }
                }
            }
            start += len;
        }
        clusterer.finish();
        reads_sequenced = expected.iter().sum();

        // Pass B: regenerate the same reads and route each into its
        // reference's pending buffer; a reference decodes (and frees its
        // buffer) the moment its last read arrives, so peak residency is
        // governed by how long clusters stay incomplete — audited by the
        // peak_resident_reads gauge — not by the pool size. References
        // that received no reads are quarantined erasures, decoded first
        // so every reference gets exactly one decode attempt.
        let mut pending: Vec<Vec<Strand>> = references.iter().map(|_| Vec::new()).collect();
        let mut ready: Vec<usize> = (0..refs_len).filter(|&r| expected[r] == 0).collect();
        let mut resident = 0usize;
        let mut cursor = 0usize;
        let mut exhausted = false;
        let mut start = 0usize;
        'route: while start < refs_len {
            let len = window_len.min(refs_len - start);
            let reads_per_group = workers
                .par_map_len(len, |i| sample_reads(start + i))
                .map_err(ArchiveError::Worker)?;
            for group_reads in reads_per_group {
                for read in group_reads {
                    if let Some(r) = assignments[cursor] {
                        let r = r as usize;
                        pending[r].push(read);
                        resident += 1;
                        if pending[r].len() == expected[r] {
                            ready.push(r);
                        }
                    }
                    cursor += 1;
                }
            }
            window.peak_resident_reads = window.peak_resident_reads.max(resident);
            while ready.len() >= window_len {
                let batch: Vec<usize> = ready.drain(..window_len).collect();
                let clusters: Vec<Cluster> = batch
                    .iter()
                    .map(|&r| {
                        Cluster::new(references[r].clone(), std::mem::take(&mut pending[r]))
                    })
                    .collect();
                let admitted = decode_window(&clusters, resident, &mut window, &mut received)?;
                resident -= dnasim_core::resident_reads(&clusters);
                if admitted < clusters.len() {
                    exhausted = true;
                    break 'route;
                }
            }
            start += len;
        }
        while !exhausted && !ready.is_empty() {
            let take = window_len.min(ready.len());
            let batch: Vec<usize> = ready.drain(..take).collect();
            let clusters: Vec<Cluster> = batch
                .iter()
                .map(|&r| Cluster::new(references[r].clone(), std::mem::take(&mut pending[r])))
                .collect();
            let admitted = decode_window(&clusters, resident, &mut window, &mut received)?;
            resident -= dnasim_core::resident_reads(&clusters);
            if admitted < clusters.len() {
                exhausted = true;
            }
        }
    } else {
        // Perfect clustering: each reference's cluster is generated and
        // decoded inside one window — sequencing output for a window
        // exists only while that window decodes.
        reads_sequenced = read_counts.iter().sum();
        let mut start = 0usize;
        while start < refs_len {
            let len = window_len.min(refs_len - start);
            let clusters: Vec<Cluster> = workers
                .par_map_len(len, |i| {
                    let g = start + i;
                    Cluster::new(references[g].clone(), sample_reads(g))
                })
                .map_err(ArchiveError::Worker)?;
            let resident = dnasim_core::resident_reads(&clusters);
            let admitted = decode_window(&clusters, resident, &mut window, &mut received)?;
            if admitted < len {
                // Budget exhausted mid-decode: the remaining clusters stay
                // quarantined and erasure recovery absorbs what it can.
                break;
            }
            start += len;
        }
    }
    // --- Erasure recovery: quarantined slots become erasures for the
    // outer code. Strict mode aborts on any budget overrun; lenient mode
    // recovers every group it can and zero-fills the rest. ---
    let clusters_quarantined = received.iter().filter(|slot| slot.is_none()).count();
    let (outcome, loss_budget_per_group): (RecoveryOutcome, usize) = match config.erasure {
        ErasureScheme::Xor { group } => {
            (XorParity::new(group).recover_lenient(&mut received), 1)
        }
        ErasureScheme::OuterRs { total, payload } => {
            let outer = OuterRsCode::new(total, payload).map_err(|_| {
                ArchiveError::Layout(RsError::InvalidParameters { n: total, k: payload })
            })?;
            let budget = outer.loss_budget();
            (outer.recover_lenient(&mut received), budget)
        }
    };
    if config.mode == ArchiveMode::Strict && !outcome.failed_groups.is_empty() {
        let index = received.iter().position(Option::is_none).unwrap_or(0) as u32;
        return Err(ArchiveError::Unrecoverable(LayoutError::MissingStrand { index }));
    }

    let mut out = Vec::with_capacity(payload_chunks.len() * chunk);
    let mut strands_unrecovered = 0usize;
    for (i, slot) in received.iter().take(payload_chunks.len()).enumerate() {
        match slot {
            Some(bytes) => out.extend_from_slice(bytes),
            None => match config.mode {
                ArchiveMode::Strict => {
                    return Err(ArchiveError::Unrecoverable(LayoutError::MissingStrand {
                        index: i as u32,
                    }))
                }
                ArchiveMode::Lenient => {
                    out.extend(std::iter::repeat_n(0u8, chunk));
                    strands_unrecovered += 1;
                }
            },
        }
    }
    out.truncate(data.len().max(1));
    Ok((
        ArchiveReport {
            data: out,
            strands_written: references.len(),
            reads_sequenced,
            strands_recovered_by_parity: outcome.recovered,
            clusters_quarantined,
            loss_budget_per_group,
            groups_exceeding_budget: outcome.failed_groups.len(),
            strands_unrecovered,
        },
        window,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn round_trip_recovers_payload() {
        let mut rng = seeded(1);
        let data: Vec<u8> = (0u8..=255).cycle().take(400).collect();
        let report = archive_round_trip(&data, &ArchiveConfig::default(), &mut rng).unwrap();
        assert_eq!(&report.data[..], &data[..]);
        assert!(report.strands_written > data.len() / 16);
        assert!(report.reads_sequenced > 0);
    }

    #[test]
    fn round_trip_with_imperfect_clustering() {
        let mut rng = seeded(2);
        let data: Vec<u8> = (0u8..200).collect();
        let config = ArchiveConfig {
            imperfect_clustering: true,
            sequencing_reads_per_strand: 14,
            ..ArchiveConfig::default()
        };
        let report = archive_round_trip(&data, &config, &mut rng).unwrap();
        assert_eq!(&report.data[..], &data[..]);
    }

    #[test]
    fn parallel_round_trip_matches_serial() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let serial =
            archive_round_trip(&data, &ArchiveConfig::default(), &mut seeded(31)).unwrap();
        for threads in [2, 4] {
            let par = archive_round_trip_on(
                &data,
                &ArchiveConfig::default(),
                &mut seeded(31),
                &ThreadPool::new(threads),
            )
            .unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn streamed_round_trip_matches_whole_at_any_batch_size() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let whole =
            archive_round_trip(&data, &ArchiveConfig::default(), &mut seeded(31)).unwrap();
        for batch_size in [1, 4, 32, usize::MAX] {
            let (streamed, window) = archive_round_trip_stream(
                &data,
                &ArchiveConfig::default(),
                &mut seeded(31),
                &ThreadPool::new(3),
                batch_size,
            )
            .unwrap();
            assert_eq!(streamed, whole, "batch_size={batch_size}");
            assert!(window.high_watermark <= batch_size);
            assert_eq!(window.clusters, whole.strands_written);
        }
    }

    #[test]
    fn streamed_round_trip_rejects_zero_batch() {
        let err = archive_round_trip_stream(
            &[1, 2, 3],
            &ArchiveConfig::default(),
            &mut seeded(1),
            &ThreadPool::serial(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
    }

    #[test]
    fn empty_payload_is_handled() {
        let mut rng = seeded(3);
        let report = archive_round_trip(&[], &ArchiveConfig::default(), &mut rng).unwrap();
        assert_eq!(report.data.len(), 1); // one zero-padded chunk, truncated to max(len, 1)
    }

    #[test]
    fn lenient_on_clean_channel_matches_strict() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let strict = archive_round_trip(&data, &ArchiveConfig::default(), &mut seeded(11)).unwrap();
        let lenient_config = ArchiveConfig {
            mode: ArchiveMode::Lenient,
            ..ArchiveConfig::default()
        };
        let lenient = archive_round_trip(&data, &lenient_config, &mut seeded(11)).unwrap();
        assert_eq!(strict.data, lenient.data);
        assert!(!lenient.is_degraded());
        assert_eq!(lenient.groups_exceeding_budget, 0);
        assert_eq!(lenient.loss_budget_per_group, 1); // XOR default
    }

    #[test]
    fn strict_aborts_when_nothing_is_sequenced() {
        let mut rng = seeded(5);
        let data = vec![0x5Au8; 120];
        let config = ArchiveConfig {
            sequencing_reads_per_strand: 0,
            ..ArchiveConfig::default()
        };
        let err = archive_round_trip(&data, &config, &mut rng).unwrap_err();
        assert!(matches!(err, ArchiveError::Unrecoverable(_)));
    }

    #[test]
    fn lenient_reports_total_loss_instead_of_aborting() {
        let mut rng = seeded(5);
        let data = vec![0x5Au8; 120];
        let config = ArchiveConfig {
            sequencing_reads_per_strand: 0,
            mode: ArchiveMode::Lenient,
            ..ArchiveConfig::default()
        };
        let report = archive_round_trip(&data, &config, &mut rng).unwrap();
        assert!(report.is_degraded());
        assert!(report.groups_exceeding_budget > 0);
        assert!(report.clusters_quarantined > 0);
        assert_eq!(report.data.len(), data.len());
        assert!(report.data.iter().all(|&b| b == 0), "lost strands zero-fill");
    }

    #[test]
    fn lenient_recovers_exactly_when_quarantine_within_budget() {
        // Starve the sequencer until some clusters fail, then check the
        // acceptance criterion: whenever quarantined losses stay within
        // the per-group budget, lenient mode returns the original bytes;
        // beyond it, it reports degradation instead of aborting.
        let data: Vec<u8> = (0u8..180).collect();
        let mut saw_quarantine = false;
        for seed in 0..12u64 {
            let config = ArchiveConfig {
                sequencing_reads_per_strand: 5,
                erasure: ErasureScheme::OuterRs { total: 6, payload: 4 },
                mode: ArchiveMode::Lenient,
                ..ArchiveConfig::default()
            };
            let report =
                archive_round_trip(&data, &config, &mut seeded(3000 + seed)).unwrap();
            saw_quarantine |= report.clusters_quarantined > 0;
            if report.groups_exceeding_budget == 0 {
                assert_eq!(&report.data[..], &data[..], "seed {seed}");
                assert!(!report.is_degraded());
            } else {
                assert!(report.is_degraded());
                assert_eq!(report.data.len(), data.len());
            }
        }
        assert!(saw_quarantine, "channel too clean to exercise quarantine");
    }

    #[test]
    fn centuries_of_storage_survive() {
        let mut rng = seeded(4);
        let data = vec![0xABu8; 160];
        let config = ArchiveConfig {
            storage_years: 1000.0,
            ..ArchiveConfig::default()
        };
        let report = archive_round_trip(&data, &config, &mut rng).unwrap();
        assert_eq!(&report.data[..], &data[..]);
    }
}

#[cfg(test)]
mod outer_code_tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn outer_rs_round_trip() {
        let mut rng = seeded(21);
        let data: Vec<u8> = (0u8..=255).cycle().take(320).collect();
        let config = ArchiveConfig {
            erasure: ErasureScheme::OuterRs { total: 6, payload: 4 },
            ..ArchiveConfig::default()
        };
        let report = archive_round_trip(&data, &config, &mut rng).unwrap();
        assert_eq!(&report.data[..], &data[..]);
    }

    #[test]
    fn outer_rs_survives_harsher_channel_than_xor() {
        // At a starvation-level read budget, XOR (1 loss/group) fails more
        // often than outer RS (2 losses/group) across seeds.
        let data: Vec<u8> = (0u8..200).collect();
        let mut xor_ok = 0;
        let mut rs_ok = 0;
        for seed in 0..8u64 {
            let mut rng = seeded(1000 + seed);
            let xor = ArchiveConfig {
                sequencing_reads_per_strand: 6,
                erasure: ErasureScheme::Xor { group: 4 },
                ..ArchiveConfig::default()
            };
            if archive_round_trip(&data, &xor, &mut rng)
                .map(|r| r.data[..data.len()] == data[..])
                .unwrap_or(false)
            {
                xor_ok += 1;
            }
            let mut rng = seeded(1000 + seed);
            let rs = ArchiveConfig {
                sequencing_reads_per_strand: 6,
                erasure: ErasureScheme::OuterRs { total: 6, payload: 4 },
                ..ArchiveConfig::default()
            };
            if archive_round_trip(&data, &rs, &mut rng)
                .map(|r| r.data[..data.len()] == data[..])
                .unwrap_or(false)
            {
                rs_ok += 1;
            }
        }
        assert!(rs_ok >= xor_ok, "outer RS ({rs_ok}) should not lose to XOR ({xor_ok})");
    }
}
