//! Dataset-level evaluation: run a reconstructor over every cluster and
//! collect accuracy and positional error profiles.

use dnasim_core::{Dataset, DnasimError};
use dnasim_metrics::{AccuracyReport, PositionalProfile, ProfileKind};
use dnasim_par::ThreadPool;
use dnasim_reconstruct::TraceReconstructor;

/// Accuracy of `algorithm` over every cluster of `dataset`.
///
/// Erasures (clusters with zero reads) are counted as total losses, as the
/// decoder would experience them.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Cluster, Dataset, Strand};
/// use dnasim_pipeline::evaluate_reconstruction;
/// use dnasim_reconstruct::MajorityVote;
///
/// let reference: Strand = "ACGT".parse()?;
/// let ds = Dataset::from_clusters(vec![Cluster::new(
///     reference.clone(),
///     vec![reference.clone(), reference.clone()],
/// )]);
/// let report = evaluate_reconstruction(&ds, &MajorityVote);
/// assert_eq!(report.per_strand_percent(), 100.0);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn evaluate_reconstruction<A: TraceReconstructor + ?Sized>(
    dataset: &Dataset,
    algorithm: &A,
) -> AccuracyReport {
    let mut report = AccuracyReport::new();
    for cluster in dataset.iter() {
        if cluster.is_erasure() {
            report.record_erasure(cluster.reference());
            continue;
        }
        let estimate = algorithm.reconstruct(cluster.reads(), cluster.reference().len());
        report.record(cluster.reference(), &estimate);
    }
    report
}

/// Parallel counterpart of [`evaluate_reconstruction`]: clusters are
/// reconstructed on `pool` (reconstruction is pure, so the estimates are
/// byte-identical to the serial path) and the report is assembled serially
/// in cluster order, so the result does not depend on the thread count.
///
/// # Errors
///
/// Returns [`DnasimError::Degraded`] if a worker panicked.
pub fn evaluate_reconstruction_on<A>(
    dataset: &Dataset,
    algorithm: &A,
    pool: &ThreadPool,
) -> Result<AccuracyReport, DnasimError>
where
    A: TraceReconstructor + Sync + ?Sized,
{
    let estimates = pool.par_map_indexed(dataset.clusters(), |_, cluster| {
        if cluster.is_erasure() {
            None
        } else {
            Some(algorithm.reconstruct(cluster.reads(), cluster.reference().len()))
        }
    })?;
    let mut report = AccuracyReport::new();
    for (cluster, estimate) in dataset.iter().zip(&estimates) {
        match estimate {
            Some(estimate) => report.record(cluster.reference(), estimate),
            None => report.record_erasure(cluster.reference()),
        }
    }
    Ok(report)
}

/// Post-reconstruction positional profiles: reconstruct every cluster and
/// compare the estimate against the reference under both attribution rules.
///
/// Returns `(hamming_profile, gestalt_profile)` — the two panels of every
/// post-reconstruction figure.
pub fn post_reconstruction_profiles<A: TraceReconstructor + ?Sized>(
    dataset: &Dataset,
    algorithm: &A,
) -> (PositionalProfile, PositionalProfile) {
    let len = dataset.strand_len().unwrap_or(0);
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, len);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
    for cluster in dataset.iter() {
        if cluster.is_erasure() {
            continue;
        }
        let estimate = algorithm.reconstruct(cluster.reads(), cluster.reference().len());
        hamming.record(cluster.reference(), &estimate);
        gestalt.record(cluster.reference(), &estimate);
    }
    (hamming, gestalt)
}

/// Pre-reconstruction profiles: compare every raw read against its
/// reference (Fig. 3.2's panels).
pub fn pre_reconstruction_profiles(dataset: &Dataset) -> (PositionalProfile, PositionalProfile) {
    let len = dataset.strand_len().unwrap_or(0);
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, len);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
    for cluster in dataset.iter() {
        for read in cluster.reads() {
            hamming.record(cluster.reference(), read);
            gestalt.record(cluster.reference(), read);
        }
    }
    (hamming, gestalt)
}

/// The §3.2 fixed-coverage protocol: keep only clusters with coverage ≥
/// `min_coverage`, then truncate every cluster to its first
/// `target_coverage` reads — so coverage `i` and `i + 1` differ only in the
/// marginal read.
pub fn fixed_coverage_protocol(
    dataset: &Dataset,
    min_coverage: usize,
    target_coverage: usize,
) -> Dataset {
    dataset
        .filter_min_coverage(min_coverage)
        .with_coverage(target_coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::{Cluster, Strand};
    use dnasim_reconstruct::{BmaLookahead, MajorityVote};

    fn clean_dataset(clusters: usize, coverage: usize, len: usize) -> Dataset {
        let mut rng = seeded(1);
        (0..clusters)
            .map(|_| {
                let r = Strand::random(len, &mut rng);
                Cluster::new(r.clone(), vec![r; coverage])
            })
            .collect()
    }

    #[test]
    fn clean_data_scores_perfectly() {
        let ds = clean_dataset(5, 3, 30);
        let report = evaluate_reconstruction(&ds, &BmaLookahead::default());
        assert_eq!(report.per_strand_percent(), 100.0);
        assert_eq!(report.per_char_percent(), 100.0);
    }

    #[test]
    fn erasures_count_as_losses() {
        let mut ds = clean_dataset(1, 2, 20);
        ds.push(Cluster::erasure(Strand::random(20, &mut seeded(2))));
        let report = evaluate_reconstruction(&ds, &MajorityVote);
        assert_eq!(report.per_strand_percent(), 50.0);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let mut ds = clean_dataset(6, 3, 20);
        ds.push(Cluster::erasure(Strand::random(20, &mut seeded(9))));
        let serial = evaluate_reconstruction(&ds, &MajorityVote);
        for threads in [1, 2, 4] {
            let par = evaluate_reconstruction_on(&ds, &MajorityVote, &ThreadPool::new(threads))
                .unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn post_profiles_are_empty_on_clean_data() {
        let ds = clean_dataset(3, 3, 25);
        let (h, g) = post_reconstruction_profiles(&ds, &MajorityVote);
        assert_eq!(h.total_errors(), 0);
        assert_eq!(g.total_errors(), 0);
        assert_eq!(h.comparisons(), 3);
    }

    #[test]
    fn pre_profiles_count_each_read() {
        let ds = clean_dataset(2, 4, 25);
        let (h, _) = pre_reconstruction_profiles(&ds);
        assert_eq!(h.comparisons(), 8);
    }

    #[test]
    fn fixed_coverage_protocol_filters_and_truncates() {
        let mut rng = seeded(3);
        let mut ds = Dataset::new();
        for coverage in [2usize, 5, 12] {
            let r = Strand::random(20, &mut rng);
            ds.push(Cluster::new(r.clone(), vec![r; coverage]));
        }
        let out = fixed_coverage_protocol(&ds, 5, 4);
        assert_eq!(out.len(), 2); // coverage-2 cluster dropped
        assert!(out.iter().all(|c| c.coverage() == 4));
    }

    #[test]
    fn coverage_prefix_property_holds() {
        // First i reads at coverage i are a prefix of coverage i+1.
        let mut rng = seeded(4);
        let r = Strand::random(20, &mut rng);
        let reads: Vec<Strand> = (0..10).map(|_| Strand::random(18, &mut rng)).collect();
        let ds = Dataset::from_clusters(vec![Cluster::new(r, reads)]);
        let c5 = fixed_coverage_protocol(&ds, 10, 5);
        let c6 = fixed_coverage_protocol(&ds, 10, 6);
        assert_eq!(
            c5.clusters()[0].reads(),
            &c6.clusters()[0].reads()[..5]
        );
    }
}
