//! Dataset-level evaluation: run a reconstructor over every cluster and
//! collect accuracy and positional error profiles.

use dnasim_core::{Budget, ClusterSource, Dataset, DnasimError, WindowStats};
use dnasim_metrics::{AccuracyReport, PositionalProfile, ProfileKind};
use dnasim_par::ThreadPool;
use dnasim_reconstruct::TraceReconstructor;

/// Accuracy of `algorithm` over every cluster of `dataset`.
///
/// Erasures (clusters with zero reads) are counted as total losses, as the
/// decoder would experience them.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Cluster, Dataset, Strand};
/// use dnasim_pipeline::evaluate_reconstruction;
/// use dnasim_reconstruct::MajorityVote;
///
/// let reference: Strand = "ACGT".parse()?;
/// let ds = Dataset::from_clusters(vec![Cluster::new(
///     reference.clone(),
///     vec![reference.clone(), reference.clone()],
/// )]);
/// let report = evaluate_reconstruction(&ds, &MajorityVote);
/// assert_eq!(report.per_strand_percent(), 100.0);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn evaluate_reconstruction<A: TraceReconstructor + ?Sized>(
    dataset: &Dataset,
    algorithm: &A,
) -> AccuracyReport {
    let mut report = AccuracyReport::new();
    for cluster in dataset.iter() {
        if cluster.is_erasure() {
            report.record_erasure(cluster.reference());
            continue;
        }
        let estimate = algorithm.reconstruct(cluster.reads(), cluster.reference().len());
        report.record(cluster.reference(), &estimate);
    }
    report
}

/// Parallel counterpart of [`evaluate_reconstruction`]: clusters are
/// reconstructed on `pool` (reconstruction is pure, so the estimates are
/// byte-identical to the serial path) and the report is assembled serially
/// in cluster order, so the result does not depend on the thread count.
///
/// # Errors
///
/// Returns [`DnasimError::Degraded`] if a worker panicked.
pub fn evaluate_reconstruction_on<A>(
    dataset: &Dataset,
    algorithm: &A,
    pool: &ThreadPool,
) -> Result<AccuracyReport, DnasimError>
where
    A: TraceReconstructor + Sync + ?Sized,
{
    let estimates = pool.par_map_indexed(dataset.clusters(), |_, cluster| {
        if cluster.is_erasure() {
            None
        } else {
            Some(algorithm.reconstruct(cluster.reads(), cluster.reference().len()))
        }
    })?;
    let mut report = AccuracyReport::new();
    for (cluster, estimate) in dataset.iter().zip(&estimates) {
        match estimate {
            Some(estimate) => report.record(cluster.reference(), estimate),
            None => report.record_erasure(cluster.reference()),
        }
    }
    Ok(report)
}

/// Streaming counterpart of [`evaluate_reconstruction_on`]: pulls
/// clusters from `source` in bounded batches of at most `batch_size`,
/// reconstructs each batch on `pool`, and folds the accuracy report in
/// cluster order — at no point are more than `batch_size` clusters (plus
/// their estimates) in flight.
///
/// Reconstruction is pure, so the report is byte-identical to the
/// in-memory path for every batch size and thread count.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`,
/// [`DnasimError::Degraded`] if a worker panicked, or whatever the
/// source reports.
pub fn evaluate_reconstruction_stream<S, A>(
    source: &mut S,
    algorithm: &A,
    batch_size: usize,
    pool: &ThreadPool,
) -> Result<(AccuracyReport, WindowStats), DnasimError>
where
    S: ClusterSource + ?Sized,
    A: TraceReconstructor + Sync + ?Sized,
{
    evaluate_reconstruction_stream_budgeted(source, algorithm, batch_size, pool, &Budget::unlimited())
}

/// [`evaluate_reconstruction_stream`] metered by a [`Budget`]: one work
/// unit per reconstructed cluster (an empty batch charges one unit, so a
/// stalled source trips the deadline instead of spinning). Admission
/// happens in the serial fold loop, so exhaustion cuts the stream at the
/// same global cluster at any batch size or thread count.
///
/// # Errors
///
/// [`DnasimError::DeadlineExceeded`] on exhaustion or cancellation, plus
/// everything [`evaluate_reconstruction_stream`] can report.
pub fn evaluate_reconstruction_stream_budgeted<S, A>(
    source: &mut S,
    algorithm: &A,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<(AccuracyReport, WindowStats), DnasimError>
where
    S: ClusterSource + ?Sized,
    A: TraceReconstructor + Sync + ?Sized,
{
    if batch_size == 0 {
        return Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ));
    }
    let mut report = AccuracyReport::new();
    let mut window = WindowStats::default();
    loop {
        budget.check("reconstruct")?;
        let Some(batch) = source.next_batch(batch_size)? else {
            break;
        };
        if batch.is_empty() {
            budget.charge("reconstruct", 1)?;
            continue;
        }
        let (estimates, admitted) = pool.par_map_admitted(budget, batch.clusters(), |_, cluster| {
            if cluster.is_erasure() {
                None
            } else {
                Some(algorithm.reconstruct(cluster.reads(), cluster.reference().len()))
            }
        })?;
        if admitted > 0 {
            window.batches += 1;
            window.clusters += admitted;
            window.high_watermark = window.high_watermark.max(admitted);
            for (cluster, estimate) in batch.clusters()[..admitted].iter().zip(&estimates) {
                match estimate {
                    Some(estimate) => report.record(cluster.reference(), estimate),
                    None => report.record_erasure(cluster.reference()),
                }
            }
        }
        if admitted < batch.len() {
            return Err(budget.exceeded("reconstruct"));
        }
    }
    Ok((report, window))
}

/// Post-reconstruction positional profiles: reconstruct every cluster and
/// compare the estimate against the reference under both attribution rules.
///
/// Returns `(hamming_profile, gestalt_profile)` — the two panels of every
/// post-reconstruction figure.
pub fn post_reconstruction_profiles<A: TraceReconstructor + ?Sized>(
    dataset: &Dataset,
    algorithm: &A,
) -> (PositionalProfile, PositionalProfile) {
    let len = dataset.strand_len().unwrap_or(0);
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, len);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
    for cluster in dataset.iter() {
        if cluster.is_erasure() {
            continue;
        }
        let estimate = algorithm.reconstruct(cluster.reads(), cluster.reference().len());
        hamming.record(cluster.reference(), &estimate);
        gestalt.record(cluster.reference(), &estimate);
    }
    (hamming, gestalt)
}

/// Pre-reconstruction profiles: compare every raw read against its
/// reference (Fig. 3.2's panels).
pub fn pre_reconstruction_profiles(dataset: &Dataset) -> (PositionalProfile, PositionalProfile) {
    let len = dataset.strand_len().unwrap_or(0);
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, len);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
    for cluster in dataset.iter() {
        for read in cluster.reads() {
            hamming.record(cluster.reference(), read);
            gestalt.record(cluster.reference(), read);
        }
    }
    (hamming, gestalt)
}

/// Streaming counterpart of [`post_reconstruction_profiles`]: profiles
/// accumulate batch-by-batch via [`PositionalProfile::merge`], with
/// reconstruction fanned out on `pool`.
///
/// The profile length is pinned by the first cluster seen (exactly as the
/// in-memory path pins it with `dataset.strand_len()`), so overflow
/// clamping — and therefore the counts — match the in-memory profiles for
/// every batch size.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`,
/// [`DnasimError::Degraded`] if a worker panicked, or whatever the
/// source reports.
pub fn post_reconstruction_profiles_stream<S, A>(
    source: &mut S,
    algorithm: &A,
    batch_size: usize,
    pool: &ThreadPool,
) -> Result<(PositionalProfile, PositionalProfile, WindowStats), DnasimError>
where
    S: ClusterSource + ?Sized,
    A: TraceReconstructor + Sync + ?Sized,
{
    if batch_size == 0 {
        return Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ));
    }
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, 0);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, 0);
    let mut len: Option<usize> = None;
    let mut window = WindowStats::default();
    while let Some(batch) = source.next_batch(batch_size)? {
        if batch.is_empty() {
            continue;
        }
        window.batches += 1;
        window.clusters += batch.len();
        window.high_watermark = window.high_watermark.max(batch.len());
        let len = *len.get_or_insert_with(|| {
            batch
                .clusters()
                .first()
                .map(|c| c.reference().len())
                .unwrap_or(0)
        });
        let estimates = pool.par_map_indexed(batch.clusters(), |_, cluster| {
            if cluster.is_erasure() {
                None
            } else {
                Some(algorithm.reconstruct(cluster.reads(), cluster.reference().len()))
            }
        })?;
        let mut batch_hamming = PositionalProfile::new(ProfileKind::Hamming, len);
        let mut batch_gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
        for (cluster, estimate) in batch.clusters().iter().zip(&estimates) {
            if let Some(estimate) = estimate {
                batch_hamming.record(cluster.reference(), estimate);
                batch_gestalt.record(cluster.reference(), estimate);
            }
        }
        hamming.merge(&batch_hamming);
        gestalt.merge(&batch_gestalt);
    }
    Ok((hamming, gestalt, window))
}

/// Streaming counterpart of [`pre_reconstruction_profiles`]: compares
/// every raw read against its reference, one bounded batch at a time,
/// merging per-batch profiles into the totals.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`, or whatever the source
/// reports.
pub fn pre_reconstruction_profiles_stream<S>(
    source: &mut S,
    batch_size: usize,
) -> Result<(PositionalProfile, PositionalProfile, WindowStats), DnasimError>
where
    S: ClusterSource + ?Sized,
{
    if batch_size == 0 {
        return Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ));
    }
    let mut hamming = PositionalProfile::new(ProfileKind::Hamming, 0);
    let mut gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, 0);
    let mut len: Option<usize> = None;
    let mut window = WindowStats::default();
    while let Some(batch) = source.next_batch(batch_size)? {
        if batch.is_empty() {
            continue;
        }
        window.batches += 1;
        window.clusters += batch.len();
        window.high_watermark = window.high_watermark.max(batch.len());
        let len = *len.get_or_insert_with(|| {
            batch
                .clusters()
                .first()
                .map(|c| c.reference().len())
                .unwrap_or(0)
        });
        let mut batch_hamming = PositionalProfile::new(ProfileKind::Hamming, len);
        let mut batch_gestalt = PositionalProfile::new(ProfileKind::GestaltAligned, len);
        for cluster in batch.clusters() {
            for read in cluster.reads() {
                batch_hamming.record(cluster.reference(), read);
                batch_gestalt.record(cluster.reference(), read);
            }
        }
        hamming.merge(&batch_hamming);
        gestalt.merge(&batch_gestalt);
    }
    Ok((hamming, gestalt, window))
}

/// The §3.2 fixed-coverage protocol: keep only clusters with coverage ≥
/// `min_coverage`, then truncate every cluster to its first
/// `target_coverage` reads — so coverage `i` and `i + 1` differ only in the
/// marginal read.
pub fn fixed_coverage_protocol(
    dataset: &Dataset,
    min_coverage: usize,
    target_coverage: usize,
) -> Dataset {
    dataset
        .filter_min_coverage(min_coverage)
        .with_coverage(target_coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::{Cluster, Strand};
    use dnasim_reconstruct::{BmaLookahead, MajorityVote};

    fn clean_dataset(clusters: usize, coverage: usize, len: usize) -> Dataset {
        let mut rng = seeded(1);
        (0..clusters)
            .map(|_| {
                let r = Strand::random(len, &mut rng);
                Cluster::new(r.clone(), vec![r; coverage])
            })
            .collect()
    }

    #[test]
    fn clean_data_scores_perfectly() {
        let ds = clean_dataset(5, 3, 30);
        let report = evaluate_reconstruction(&ds, &BmaLookahead::default());
        assert_eq!(report.per_strand_percent(), 100.0);
        assert_eq!(report.per_char_percent(), 100.0);
    }

    #[test]
    fn erasures_count_as_losses() {
        let mut ds = clean_dataset(1, 2, 20);
        ds.push(Cluster::erasure(Strand::random(20, &mut seeded(2))));
        let report = evaluate_reconstruction(&ds, &MajorityVote);
        assert_eq!(report.per_strand_percent(), 50.0);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let mut ds = clean_dataset(6, 3, 20);
        ds.push(Cluster::erasure(Strand::random(20, &mut seeded(9))));
        let serial = evaluate_reconstruction(&ds, &MajorityVote);
        for threads in [1, 2, 4] {
            let par = evaluate_reconstruction_on(&ds, &MajorityVote, &ThreadPool::new(threads))
                .unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn streaming_evaluation_matches_in_memory() {
        let mut ds = clean_dataset(7, 3, 20);
        ds.push(Cluster::erasure(Strand::random(20, &mut seeded(9))));
        let whole = evaluate_reconstruction(&ds, &MajorityVote);
        for batch_size in [1, 3, 5, usize::MAX] {
            for threads in [1, 4] {
                let (report, window) = evaluate_reconstruction_stream(
                    &mut ds.stream(),
                    &MajorityVote,
                    batch_size,
                    &ThreadPool::new(threads),
                )
                .unwrap();
                assert_eq!(report, whole, "batch_size={batch_size} threads={threads}");
                assert_eq!(window.clusters, ds.len());
                assert!(window.high_watermark <= batch_size);
            }
        }
    }

    #[test]
    fn streaming_profiles_match_in_memory() {
        let mut rng = seeded(5);
        let mut ds = Dataset::new();
        for _ in 0..6 {
            let r = Strand::random(20, &mut rng);
            let reads = (0..3).map(|_| Strand::random(19, &mut rng)).collect();
            ds.push(Cluster::new(r, reads));
        }
        let (post_h, post_g) = post_reconstruction_profiles(&ds, &MajorityVote);
        let (pre_h, pre_g) = pre_reconstruction_profiles(&ds);
        for batch_size in [1, 2, 4, usize::MAX] {
            let (h, g, _) = post_reconstruction_profiles_stream(
                &mut ds.stream(),
                &MajorityVote,
                batch_size,
                &ThreadPool::serial(),
            )
            .unwrap();
            assert_eq!(h, post_h, "post hamming batch_size={batch_size}");
            assert_eq!(g, post_g, "post gestalt batch_size={batch_size}");
            let (h, g, _) =
                pre_reconstruction_profiles_stream(&mut ds.stream(), batch_size).unwrap();
            assert_eq!(h, pre_h, "pre hamming batch_size={batch_size}");
            assert_eq!(g, pre_g, "pre gestalt batch_size={batch_size}");
        }
    }

    #[test]
    fn streaming_evaluation_rejects_zero_batch() {
        let ds = clean_dataset(2, 2, 10);
        assert!(evaluate_reconstruction_stream(
            &mut ds.stream(),
            &MajorityVote,
            0,
            &ThreadPool::serial()
        )
        .is_err());
    }

    #[test]
    fn post_profiles_are_empty_on_clean_data() {
        let ds = clean_dataset(3, 3, 25);
        let (h, g) = post_reconstruction_profiles(&ds, &MajorityVote);
        assert_eq!(h.total_errors(), 0);
        assert_eq!(g.total_errors(), 0);
        assert_eq!(h.comparisons(), 3);
    }

    #[test]
    fn pre_profiles_count_each_read() {
        let ds = clean_dataset(2, 4, 25);
        let (h, _) = pre_reconstruction_profiles(&ds);
        assert_eq!(h.comparisons(), 8);
    }

    #[test]
    fn fixed_coverage_protocol_filters_and_truncates() {
        let mut rng = seeded(3);
        let mut ds = Dataset::new();
        for coverage in [2usize, 5, 12] {
            let r = Strand::random(20, &mut rng);
            ds.push(Cluster::new(r.clone(), vec![r; coverage]));
        }
        let out = fixed_coverage_protocol(&ds, 5, 4);
        assert_eq!(out.len(), 2); // coverage-2 cluster dropped
        assert!(out.iter().all(|c| c.coverage() == 4));
    }

    #[test]
    fn coverage_prefix_property_holds() {
        // First i reads at coverage i are a prefix of coverage i+1.
        let mut rng = seeded(4);
        let r = Strand::random(20, &mut rng);
        let reads: Vec<Strand> = (0..10).map(|_| Strand::random(18, &mut rng)).collect();
        let ds = Dataset::from_clusters(vec![Cluster::new(r, reads)]);
        let c5 = fixed_coverage_protocol(&ds, 10, 5);
        let c6 = fixed_coverage_protocol(&ds, 10, 6);
        assert_eq!(
            c5.clusters()[0].reads(),
            &c6.clusters()[0].reads()[..5]
        );
    }
}
