//! End-to-end orchestration and the paper's experiment protocols.
//!
//! This crate ties the workspace together:
//!
//! * [`evaluate_reconstruction`] / [`post_reconstruction_profiles`] /
//!   [`pre_reconstruction_profiles`] — dataset-level evaluation;
//! * [`fixed_coverage_protocol`] — the §3.2 first-N-reads protocol;
//! * [`Experiments`] — one method per table and figure of the paper
//!   (Tables 2.1–3.2, Figs. 3.2–3.10, the sensitivity grid, and the
//!   two-way-Iterative extension);
//! * [`archive_round_trip`] — the full write→store→read pipeline
//!   composing codec, multi-stage channel, clustering and reconstruction.
//!
//! Every evaluation entry point has a `_stream` counterpart
//! ([`evaluate_reconstruction_stream`], [`archive_round_trip_stream`],
//! [`simulator_fidelity_stream`], the profile functions) that runs
//! source→batch→pool→sink with a bounded window of clusters and
//! byte-identical output (DESIGN.md §11).
//!
//! # Examples
//!
//! ```
//! use dnasim_dataset::NanoporeTwinConfig;
//! use dnasim_pipeline::Experiments;
//!
//! let mut config = NanoporeTwinConfig::small();
//! config.cluster_count = 40;
//! let experiments = Experiments::new(&config);
//! let table = experiments.table_2_2();
//! assert_eq!(table.rows.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod archive;
mod evaluate;
mod fidelity;
mod random_access;
mod experiments;
mod table;

pub use archive::{
    archive_round_trip, archive_round_trip_on, archive_round_trip_stream,
    archive_round_trip_stream_budgeted, ArchiveConfig, ArchiveError, ArchiveMode, ArchiveReport,
    ErasureScheme,
};
pub use fidelity::{simulator_fidelity, simulator_fidelity_stream, FidelityReport};
pub use random_access::{FilePool, PoolConfig, PoolError};
pub use evaluate::{
    evaluate_reconstruction, evaluate_reconstruction_on, evaluate_reconstruction_stream,
    evaluate_reconstruction_stream_budgeted, fixed_coverage_protocol,
    post_reconstruction_profiles, post_reconstruction_profiles_stream,
    pre_reconstruction_profiles, pre_reconstruction_profiles_stream,
};
pub use experiments::{cross_dataset_robustness, references_of, Experiments, SensitivityPoint};
pub use table::{AccuracyCell, Table, TableRow};
