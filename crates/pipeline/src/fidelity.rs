//! Simulator-fidelity metrics beyond reconstruction accuracy — the other
//! evaluation criteria §3.1 enumerates:
//!
//! 1. **error statistics** — χ² distance between the error-type frequency
//!    histograms of real and simulated data;
//! 2. **positional statistics** — χ² distance between the per-position
//!    error histograms (the spatial profile, this paper's key parameter);
//! 3. **string similarity** — difference in the mean gestalt score of reads
//!    against their references.
//!
//! Accuracy-after-reconstruction remains the paper's headline metric;
//! these closed-form distances are cheap complements for quick iteration.

use dnasim_core::{ClusterSource, Dataset, DnasimError, EditOp, WindowStats};
use dnasim_metrics::{chi_square_distance, gestalt_score, normalize_histogram};
use dnasim_profile::{ErrorStats, TieBreak};

use dnasim_core::rng::SimRng;

/// The §3.1 fidelity distances between a real and a simulated dataset
/// (all: lower is better, 0 = indistinguishable under that statistic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// χ² distance between second-order error-type frequency histograms.
    pub error_type_distance: f64,
    /// χ² distance between per-position error histograms.
    pub positional_distance: f64,
    /// |mean gestalt(real reads) − mean gestalt(simulated reads)|.
    pub gestalt_gap: f64,
    /// |aggregate error rate(real) − aggregate(simulated)|.
    pub aggregate_rate_gap: f64,
}

impl FidelityReport {
    /// A single scalar summary (unweighted sum of the four distances).
    pub fn total(&self) -> f64 {
        self.error_type_distance
            + self.positional_distance
            + self.gestalt_gap
            + self.aggregate_rate_gap
    }
}

impl std::fmt::Display for FidelityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "χ²(error types) {:.4}, χ²(positions) {:.4}, gestalt gap {:.4}, rate gap {:.4}",
            self.error_type_distance,
            self.positional_distance,
            self.gestalt_gap,
            self.aggregate_rate_gap
        )
    }
}

/// Computes the §3.1 fidelity distances between `real` and `simulated`.
///
/// Both datasets are profiled with the Appendix-B edit-script recovery;
/// the error-type histogram covers every specific (second-order) error
/// observed in either dataset.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_dataset::NanoporeTwinConfig;
/// use dnasim_pipeline::simulator_fidelity;
///
/// let mut config = NanoporeTwinConfig::small();
/// config.cluster_count = 20;
/// let real = config.generate();
/// let mut rng = seeded(1);
/// // A dataset is perfectly faithful to itself.
/// let report = simulator_fidelity(&real, &real, &mut rng);
/// assert!(report.total() < 1e-9);
/// ```
pub fn simulator_fidelity(
    real: &Dataset,
    simulated: &Dataset,
    rng: &mut SimRng,
) -> FidelityReport {
    let real_stats = ErrorStats::from_dataset(real, TieBreak::PreferSubstitution, rng);
    let sim_stats = ErrorStats::from_dataset(simulated, TieBreak::PreferSubstitution, rng);

    let mean_gestalt = |ds: &Dataset| -> f64 {
        let mut acc = GestaltAccumulator::default();
        for cluster in ds.iter() {
            acc.record_cluster(cluster);
        }
        acc.mean()
    };
    report_from_parts(
        &real_stats,
        &sim_stats,
        mean_gestalt(real),
        mean_gestalt(simulated),
    )
}

/// Streaming counterpart of [`simulator_fidelity`]: pulls the real and
/// simulated clusters from two [`ClusterSource`]s in bounded batches of
/// at most `batch_size`, accumulating the error statistics (via
/// [`ErrorStats::merge`]) and the mean gestalt score incrementally.
///
/// The real source drains first, then the simulated one — the same order
/// [`simulator_fidelity`] profiles the two datasets — so the report is
/// identical for every batch size.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`, or whatever either
/// source reports.
pub fn simulator_fidelity_stream<S1, S2>(
    real: &mut S1,
    simulated: &mut S2,
    batch_size: usize,
    rng: &mut SimRng,
) -> Result<(FidelityReport, WindowStats), DnasimError>
where
    S1: ClusterSource + ?Sized,
    S2: ClusterSource + ?Sized,
{
    let (real_stats, real_gestalt, mut window) = drain_fidelity_inputs(real, batch_size, rng)?;
    let (sim_stats, sim_gestalt, sim_window) = drain_fidelity_inputs(simulated, batch_size, rng)?;
    window.absorb(sim_window);
    Ok((
        report_from_parts(&real_stats, &sim_stats, real_gestalt, sim_gestalt),
        window,
    ))
}

/// Mean gestalt score over (reference, read) pairs, accumulated one
/// cluster at a time.
#[derive(Debug, Default, Clone, Copy)]
struct GestaltAccumulator {
    total: f64,
    count: usize,
}

impl GestaltAccumulator {
    fn record_cluster(&mut self, cluster: &dnasim_core::Cluster) {
        for read in cluster.reads() {
            self.total += gestalt_score(cluster.reference().as_bases(), read.as_bases());
            self.count += 1;
        }
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.total / self.count as f64
        }
    }
}

fn drain_fidelity_inputs<S: ClusterSource + ?Sized>(
    source: &mut S,
    batch_size: usize,
    rng: &mut SimRng,
) -> Result<(ErrorStats, f64, WindowStats), DnasimError> {
    if batch_size == 0 {
        return Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ));
    }
    let mut stats = ErrorStats::new();
    let mut gestalt = GestaltAccumulator::default();
    let mut window = WindowStats::default();
    while let Some(batch) = source.next_batch(batch_size)? {
        if batch.is_empty() {
            continue;
        }
        window.batches += 1;
        window.clusters += batch.len();
        window.high_watermark = window.high_watermark.max(batch.len());
        let mut partial = ErrorStats::new();
        for cluster in batch.clusters() {
            partial.record_cluster(cluster, TieBreak::PreferSubstitution, rng);
            gestalt.record_cluster(cluster);
        }
        stats.merge(&partial);
    }
    Ok((stats, gestalt.mean(), window))
}

fn report_from_parts(
    real_stats: &ErrorStats,
    sim_stats: &ErrorStats,
    real_gestalt: f64,
    sim_gestalt: f64,
) -> FidelityReport {
    // Error-type histogram over the union of observed specific errors.
    let mut ops: Vec<EditOp> = real_stats
        .second_order_errors()
        .into_iter()
        .map(|(op, _)| op)
        .chain(sim_stats.second_order_errors().into_iter().map(|(op, _)| op))
        .collect();
    ops.sort();
    ops.dedup();
    let histogram = |stats: &ErrorStats| -> Vec<f64> {
        let by_op: std::collections::HashMap<EditOp, usize> = stats
            .second_order_errors()
            .into_iter()
            .map(|(op, stat)| (op, stat.count))
            .collect();
        let counts: Vec<usize> = ops
            .iter()
            .map(|op| by_op.get(op).copied().unwrap_or(0))
            .collect();
        normalize_histogram(&counts)
    };
    let error_type_distance = chi_square_distance(&histogram(real_stats), &histogram(sim_stats));

    let positional_distance = chi_square_distance(
        &normalize_histogram(real_stats.positional_errors()),
        &normalize_histogram(sim_stats.positional_errors()),
    );

    let gestalt_gap = (real_gestalt - sim_gestalt).abs();

    let aggregate_rate_gap =
        (real_stats.aggregate_error_rate() - sim_stats.aggregate_error_rate()).abs();

    FidelityReport {
        error_type_distance,
        positional_distance,
        gestalt_gap,
        aggregate_rate_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{CoverageModel, KeoliyaModel, Simulator, SimulatorLayer};
    use dnasim_core::rng::seeded;
    use dnasim_dataset::NanoporeTwinConfig;
    use dnasim_profile::LearnedModel;

    fn twin(n: usize) -> Dataset {
        let mut config = NanoporeTwinConfig::small();
        config.cluster_count = n;
        config.generate()
    }

    #[test]
    fn identical_datasets_have_zero_distance() {
        let real = twin(25);
        let mut rng = seeded(1);
        let report = simulator_fidelity(&real, &real, &mut rng);
        assert!(report.error_type_distance < 1e-12);
        assert!(report.positional_distance < 1e-12);
        assert!(report.gestalt_gap < 1e-12);
        assert!(report.aggregate_rate_gap < 1e-12);
        assert!(report.total() < 1e-9);
    }

    #[test]
    fn layered_simulator_is_closer_than_naive() {
        // The paper's claim restated in the §3.1 closed-form metrics: the
        // spatial-skew layer should beat the naive layer on the positional
        // χ² distance.
        let real = twin(60);
        let mut rng = seeded(2);
        let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
        let learned = LearnedModel::from_stats(&stats, 10);
        let simulate = |layer: SimulatorLayer, rng: &mut SimRng| {
            Simulator::new(
                KeoliyaModel::new(learned.clone(), layer),
                CoverageModel::Fixed(0),
            )
            .resimulate_matching(&real, rng)
        };
        let naive = simulate(SimulatorLayer::Naive, &mut rng);
        let skewed = simulate(SimulatorLayer::SpatialSkew, &mut rng);
        let naive_report = simulator_fidelity(&real, &naive, &mut rng);
        let skew_report = simulator_fidelity(&real, &skewed, &mut rng);
        assert!(
            skew_report.positional_distance < naive_report.positional_distance,
            "skew layer {:.5} should beat naive {:.5} on positional χ²",
            skew_report.positional_distance,
            naive_report.positional_distance
        );
    }

    #[test]
    fn streaming_fidelity_matches_in_memory() {
        let real = twin(20);
        let simulated = {
            let mut rng = seeded(3);
            Simulator::new(
                KeoliyaModel::new(
                    LearnedModel::from_stats(
                        &ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng),
                        10,
                    ),
                    SimulatorLayer::Naive,
                ),
                CoverageModel::Fixed(0),
            )
            .resimulate_matching(&real, &mut rng)
        };
        let whole = simulator_fidelity(&real, &simulated, &mut seeded(5));
        for batch_size in [1, 3, 8, usize::MAX] {
            let (streamed, window) = simulator_fidelity_stream(
                &mut real.stream(),
                &mut simulated.stream(),
                batch_size,
                &mut seeded(5),
            )
            .unwrap();
            assert_eq!(streamed, whole, "batch_size={batch_size}");
            assert_eq!(window.clusters, real.len() + simulated.len());
            assert!(window.high_watermark <= batch_size);
        }
    }

    #[test]
    fn display_mentions_all_components() {
        let report = FidelityReport {
            error_type_distance: 0.1,
            positional_distance: 0.2,
            gestalt_gap: 0.3,
            aggregate_rate_gap: 0.4,
        };
        let text = report.to_string();
        assert!(text.contains("error types"));
        assert!(text.contains("positions"));
        assert!(text.contains("gestalt"));
        assert!((report.total() - 1.0).abs() < 1e-12);
    }
}
