//! End-to-end CLI tests: drive the `dnasim` binary as a user would.

use std::process::Command;

fn dnasim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnasim"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dnasim-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_lists_commands() {
    let out = dnasim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "profile", "simulate", "reconstruct", "evaluate", "experiment"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage_and_exit_code_2() {
    let out = dnasim().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn generate_profile_simulate_reconstruct_pipeline() {
    let twin = tmp("twin.txt");
    let sim = tmp("sim.txt");

    // generate
    let out = dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "60"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 60 clusters"));

    // profile
    let out = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap(), "--top-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("aggregate error rate"));
    assert!(text.contains("conditional probabilities"));

    // simulate (resimulate with the learned model)
    let out = dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "keoliya:spatial",
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // reconstruct on both
    for file in [&twin, &sim] {
        let out = dnasim()
            .args([
                "reconstruct",
                "--data",
                file.to_str().unwrap(),
                "--algo",
                "iterative",
                "--coverage",
                "5",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("per-strand"));
    }

    // evaluate real vs simulated
    let out = dnasim()
        .args([
            "evaluate",
            "--real",
            twin.to_str().unwrap(),
            "--sim",
            sim.to_str().unwrap(),
            "--coverage",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bma") && text.contains("iterative"));
}

#[test]
fn missing_required_option_is_a_usage_error() {
    let out = dnasim().args(["generate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out"));
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn unknown_algorithm_reports_error() {
    let twin = tmp("twin2.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "10"])
        .output()
        .unwrap();
    let out = dnasim()
        .args(["reconstruct", "--data", twin.to_str().unwrap(), "--algo", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn archive_round_trips() {
    let out = dnasim().args(["archive", "--bytes", "256"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("round-trip OK"));
}

#[test]
fn archive_strict_fails_when_nothing_is_sequenced() {
    let out = dnasim()
        .args(["archive", "--bytes", "128", "--reads", "0", "--strict"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn archive_lenient_degrades_with_exit_code_3() {
    let out = dnasim()
        .args(["archive", "--bytes", "128", "--reads", "0", "--lenient"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEGRADED"));
    assert!(stdout.contains("quarantined"));
}

#[test]
fn archive_rejects_contradictory_modes() {
    let out = dnasim()
        .args(["archive", "--bytes", "64", "--strict", "--lenient"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn chaos_smoke_grid_passes() {
    let out = dnasim().args(["chaos", "--seeds", "1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos:"));
    assert!(stdout.contains("0 panicked"));
}

#[test]
fn stats_reports_dataset_summary() {
    let twin = tmp("twin3.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let out = dnasim()
        .args(["stats", "--data", twin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clusters:        25"));
    assert!(text.contains("coverage histogram"));
}

#[test]
fn evaluate_reports_fidelity() {
    let twin = tmp("twin4.txt");
    let sim = tmp("sim4.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "naive",
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = dnasim()
        .args([
            "evaluate",
            "--real",
            twin.to_str().unwrap(),
            "--sim",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fidelity:"));
    assert!(text.contains("χ²"));
}

#[test]
fn profile_save_and_simulate_from_model_file() {
    let twin = tmp("twin5.txt");
    let model = tmp("model5.txt");
    let sim = tmp("sim5.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let out = dnasim()
        .args([
            "profile",
            "--data",
            twin.to_str().unwrap(),
            "--save",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&model).unwrap();
    assert!(text.starts_with("dnasim-learned-model v1"));

    let out = dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "keoliya:second",
            "--model-file",
            model.to_str().unwrap(),
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(sim.exists());
}

#[test]
fn streamed_generate_is_byte_identical_to_in_memory() {
    let whole = tmp("gen-whole.txt");
    let streamed = tmp("gen-streamed.txt");
    for (path, extra) in [(&whole, &[][..]), (&streamed, &["--stream", "--batch-size", "7"][..])] {
        let out = dnasim()
            .args(["generate", "--out", path.to_str().unwrap(), "--small", "--clusters", "40"])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 40 clusters"));
    }
    assert_eq!(
        std::fs::read(&whole).unwrap(),
        std::fs::read(&streamed).unwrap(),
        "streamed generate must produce the same file"
    );
}

#[test]
fn streamed_simulate_is_byte_identical_to_in_memory() {
    let twin = tmp("stream-twin.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "30"])
        .output()
        .unwrap();
    let whole = tmp("sim-whole.txt");
    let streamed = tmp("sim-streamed.txt");
    for (path, extra) in [
        (&whole, &[][..]),
        (&streamed, &["--stream", "--batch-size", "5", "--threads", "2"][..]),
    ] {
        let out = dnasim()
            .args([
                "simulate",
                "--data",
                twin.to_str().unwrap(),
                "--model",
                "keoliya:spatial",
                "--out",
                path.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    assert_eq!(
        std::fs::read(&whole).unwrap(),
        std::fs::read(&streamed).unwrap(),
        "streamed simulate must produce the same file"
    );
}

#[test]
fn streamed_profile_prints_identical_statistics() {
    let twin = tmp("profile-twin.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let whole = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap()])
        .output()
        .unwrap();
    let streamed = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap(), "--stream", "--batch-size", "4"])
        .output()
        .unwrap();
    assert!(whole.status.success() && streamed.status.success());
    assert_eq!(
        String::from_utf8_lossy(&whole.stdout),
        String::from_utf8_lossy(&streamed.stdout),
        "streamed profile must report the same statistics"
    );
}

#[test]
fn archive_with_bounded_decode_window_round_trips() {
    let out = dnasim()
        .args(["archive", "--bytes", "256", "--batch-size", "16"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round-trip OK"));
    assert!(stdout.contains("decoded"), "window stats must be reported");
}
