//! End-to-end CLI tests: drive the `dnasim` binary as a user would.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn dnasim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnasim"))
}

/// Runs `dnasim serve <args>` with `input` piped to stdin and both output
/// streams captured.
fn serve_with_input(args: &[&str], input: &str) -> Output {
    let mut child = dnasim()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dnasim-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_lists_commands() {
    let out = dnasim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "profile", "simulate", "reconstruct", "evaluate", "experiment"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage_and_exit_code_2() {
    let out = dnasim().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn generate_profile_simulate_reconstruct_pipeline() {
    let twin = tmp("twin.txt");
    let sim = tmp("sim.txt");

    // generate
    let out = dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "60"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 60 clusters"));

    // profile
    let out = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap(), "--top-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("aggregate error rate"));
    assert!(text.contains("conditional probabilities"));

    // simulate (resimulate with the learned model)
    let out = dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "keoliya:spatial",
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // reconstruct on both
    for file in [&twin, &sim] {
        let out = dnasim()
            .args([
                "reconstruct",
                "--data",
                file.to_str().unwrap(),
                "--algo",
                "iterative",
                "--coverage",
                "5",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("per-strand"));
    }

    // evaluate real vs simulated
    let out = dnasim()
        .args([
            "evaluate",
            "--real",
            twin.to_str().unwrap(),
            "--sim",
            sim.to_str().unwrap(),
            "--coverage",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bma") && text.contains("iterative"));
}

#[test]
fn missing_required_option_is_a_usage_error() {
    let out = dnasim().args(["generate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out"));
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn unknown_algorithm_reports_error() {
    let twin = tmp("twin2.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "10"])
        .output()
        .unwrap();
    let out = dnasim()
        .args(["reconstruct", "--data", twin.to_str().unwrap(), "--algo", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn archive_round_trips() {
    let out = dnasim().args(["archive", "--bytes", "256"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("round-trip OK"));
}

#[test]
fn archive_strict_fails_when_nothing_is_sequenced() {
    let out = dnasim()
        .args(["archive", "--bytes", "128", "--reads", "0", "--strict"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn archive_lenient_degrades_with_exit_code_3() {
    let out = dnasim()
        .args(["archive", "--bytes", "128", "--reads", "0", "--lenient"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEGRADED"));
    assert!(stdout.contains("quarantined"));
}

#[test]
fn archive_rejects_contradictory_modes() {
    let out = dnasim()
        .args(["archive", "--bytes", "64", "--strict", "--lenient"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn chaos_smoke_grid_passes() {
    let out = dnasim().args(["chaos", "--seeds", "1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos:"));
    assert!(stdout.contains("0 panicked"));
}

#[test]
fn stats_reports_dataset_summary() {
    let twin = tmp("twin3.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let out = dnasim()
        .args(["stats", "--data", twin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clusters:        25"));
    assert!(text.contains("coverage histogram"));
}

#[test]
fn evaluate_reports_fidelity() {
    let twin = tmp("twin4.txt");
    let sim = tmp("sim4.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "naive",
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = dnasim()
        .args([
            "evaluate",
            "--real",
            twin.to_str().unwrap(),
            "--sim",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fidelity:"));
    assert!(text.contains("χ²"));
}

#[test]
fn profile_save_and_simulate_from_model_file() {
    let twin = tmp("twin5.txt");
    let model = tmp("model5.txt");
    let sim = tmp("sim5.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let out = dnasim()
        .args([
            "profile",
            "--data",
            twin.to_str().unwrap(),
            "--save",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&model).unwrap();
    assert!(text.starts_with("dnasim-learned-model v1"));

    let out = dnasim()
        .args([
            "simulate",
            "--data",
            twin.to_str().unwrap(),
            "--model",
            "keoliya:second",
            "--model-file",
            model.to_str().unwrap(),
            "--out",
            sim.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(sim.exists());
}

#[test]
fn streamed_generate_is_byte_identical_to_in_memory() {
    let whole = tmp("gen-whole.txt");
    let streamed = tmp("gen-streamed.txt");
    for (path, extra) in [(&whole, &[][..]), (&streamed, &["--stream", "--batch-size", "7"][..])] {
        let out = dnasim()
            .args(["generate", "--out", path.to_str().unwrap(), "--small", "--clusters", "40"])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 40 clusters"));
    }
    assert_eq!(
        std::fs::read(&whole).unwrap(),
        std::fs::read(&streamed).unwrap(),
        "streamed generate must produce the same file"
    );
}

#[test]
fn streamed_simulate_is_byte_identical_to_in_memory() {
    let twin = tmp("stream-twin.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "30"])
        .output()
        .unwrap();
    let whole = tmp("sim-whole.txt");
    let streamed = tmp("sim-streamed.txt");
    for (path, extra) in [
        (&whole, &[][..]),
        (&streamed, &["--stream", "--batch-size", "5", "--threads", "2"][..]),
    ] {
        let out = dnasim()
            .args([
                "simulate",
                "--data",
                twin.to_str().unwrap(),
                "--model",
                "keoliya:spatial",
                "--out",
                path.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    assert_eq!(
        std::fs::read(&whole).unwrap(),
        std::fs::read(&streamed).unwrap(),
        "streamed simulate must produce the same file"
    );
}

#[test]
fn streamed_profile_prints_identical_statistics() {
    let twin = tmp("profile-twin.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "25"])
        .output()
        .unwrap();
    let whole = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap()])
        .output()
        .unwrap();
    let streamed = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap(), "--stream", "--batch-size", "4"])
        .output()
        .unwrap();
    assert!(whole.status.success() && streamed.status.success());
    assert_eq!(
        String::from_utf8_lossy(&whole.stdout),
        String::from_utf8_lossy(&streamed.stdout),
        "streamed profile must report the same statistics"
    );
}

#[test]
fn serve_answers_each_request_line_in_order() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"g1\",\"op\":\"generate\",\
                 \"clusters\":4,\"len\":30}\n\
                 {\"tenant\":\"beta\",\"request_id\":\"a1\",\"op\":\"archive\",\"bytes\":64}\n";
    let out = serve_with_input(&["--seed", "11"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "one response per request line");
    assert!(lines[0].contains("\"request_id\":\"g1\"") && lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].contains("\"request_id\":\"a1\"") && lines[1].contains("\"round_trip\":true"));
    // The session summary goes to stderr; stdout stays pure JSONL.
    assert!(String::from_utf8_lossy(&out.stderr).contains("served 2 request(s)"));
}

#[test]
fn serve_malformed_json_is_a_usage_error_with_diagnostic() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"g1\",\"op\":\"generate\",\
                 \"clusters\":2,\"len\":20}\n\
                 this is not json\n";
    let out = serve_with_input(&[], input);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("request line 2"), "diagnostic must locate the line: {stderr}");
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
    // The request admitted before the bad line was still answered.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 1);
    assert!(stdout.contains("\"request_id\":\"g1\""));
}

#[test]
fn serve_unknown_op_is_a_usage_error_with_diagnostic() {
    let out = serve_with_input(
        &[],
        "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"frobnicate\"}\n",
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frobnicate"), "diagnostic must name the op: {stderr}");
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn serve_oversized_batch_is_a_usage_error_with_diagnostic() {
    let out = serve_with_input(
        &["--max-batch", "100"],
        "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"generate\",\"clusters\":101}\n",
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("admission cap"),
        "diagnostic must explain the rejection: {stderr}"
    );
    assert!(stderr.contains("commands:"), "usage must be printed on stderr");
}

#[test]
fn serve_missing_identity_is_a_usage_error() {
    let out = serve_with_input(&[], "{\"op\":\"generate\",\"clusters\":2}\n");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("tenant"));
}

#[test]
fn serve_lenient_mode_answers_malformed_lines_in_place() {
    let input = "garbage\n\
                 {\"tenant\":\"acme\",\"request_id\":\"g1\",\"op\":\"generate\",\
                 \"clusters\":2,\"len\":20}\n\
                 {\"tenant\":\"beta\",\"request_id\":\"x\",\"op\":\"warp\"}\n";
    let out = serve_with_input(&["--lenient"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"status\":\"rejected\""));
    assert!(lines[1].contains("\"status\":\"ok\""));
    assert!(lines[2].contains("\"status\":\"rejected\""));
    assert!(String::from_utf8_lossy(&out.stderr).contains("2 rejected"));
}

#[test]
fn serve_responses_replay_identically_across_thread_counts() {
    let mut input = String::new();
    for i in 0..6 {
        input.push_str(&format!(
            "{{\"tenant\":\"t{}\",\"request_id\":\"r{i}\",\"op\":\"corrupt\",\
             \"count\":3,\"len\":25,\"reads\":2}}\n",
            i % 2
        ));
    }
    let serial = serve_with_input(&["--seed", "3", "--threads", "1"], &input);
    let parallel = serve_with_input(&["--seed", "3", "--threads", "4"], &input);
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "serve responses must be byte-identical for every --threads value"
    );
}

#[test]
fn serve_per_request_deadline_answers_with_a_typed_deadline_response() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"d1\",\"op\":\"generate\",\
                 \"clusters\":12,\"len\":30,\"deadline\":3}\n\
                 {\"tenant\":\"acme\",\"request_id\":\"d2\",\"op\":\"generate\",\
                 \"clusters\":4,\"len\":30}\n";
    let out = serve_with_input(&["--seed", "5"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(
        lines[0].contains("\"status\":\"deadline\"")
            && lines[0].contains("\"spent\":3")
            && lines[0].contains("\"limit\":3")
            && lines[0].contains("\"stage\":"),
        "deadline response must be typed: {}",
        lines[0]
    );
    assert!(lines[1].contains("\"status\":\"ok\""), "unmetered request unaffected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("1 deadline"));
}

#[test]
fn serve_default_deadline_meters_all_requests_and_zero_is_a_usage_error() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"m1\",\"op\":\"generate\",\
                 \"clusters\":10,\"len\":25}\n";
    let out = serve_with_input(&["--default-deadline", "2"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"status\":\"deadline\""));

    let out = serve_with_input(&["--default-deadline", "0"], input);
    assert_eq!(out.status.code(), Some(2), "a zero deadline is meaningless");
    assert!(String::from_utf8_lossy(&out.stderr).contains("default-deadline"));
}

#[test]
fn serve_retries_report_attempts_in_responses() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"generate\",\
                 \"clusters\":2,\"len\":20}\n";
    let out = serve_with_input(&["--retries", "2"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"attempts\":1"),
        "retry policy must surface the attempt count: {stdout}"
    );
}

#[test]
fn serve_sheds_requests_over_the_cluster_budget_as_overloaded() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"big\",\"op\":\"generate\",\
                 \"clusters\":500,\"len\":24}\n\
                 {\"tenant\":\"acme\",\"request_id\":\"small\",\"op\":\"generate\",\
                 \"clusters\":3,\"len\":24}\n";
    let out = serve_with_input(&["--cluster-budget", "32"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(
        lines[0].contains("\"status\":\"rejected\"")
            && lines[0].contains("\"reason\":\"overloaded\""),
        "oversized request must be shed: {}",
        lines[0]
    );
    assert!(lines[1].contains("\"status\":\"ok\""), "in-budget request unaffected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("1 shed"));
}

#[test]
fn serve_broken_stdout_exits_cleanly_with_code_4() {
    let mut child = dnasim()
        .args(["serve", "--lenient"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Hang up the response stream before any request is served.
    drop(child.stdout.take());
    let mut stdin = child.stdin.take().unwrap();
    // Keep feeding requests until the server notices the dead pipe; it
    // may exit (closing our stdin pipe) before we finish writing.
    for i in 0..256 {
        let line = format!(
            "{{\"tenant\":\"acme\",\"request_id\":\"p{i}\",\"op\":\"generate\",\
             \"clusters\":2,\"len\":20}}\n"
        );
        if stdin.write_all(line.as_bytes()).is_err() {
            break;
        }
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "a hung-up consumer is a clean shutdown, not a crash: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("hung up"));
}

#[test]
fn chaos_json_emits_a_machine_readable_summary() {
    let out = dnasim().args(["chaos", "--seeds", "1", "--json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"cases\":"),
        "stdout must be the JSON object alone: {stdout}"
    );
    assert!(stdout.contains("\"clean\":true"));
    assert!(stdout.contains("\"verdicts\":"));
    assert!(stdout.contains("\"budget-exhaustion\""));
    assert!(!stdout.contains("chaos:"), "human summary must not pollute JSON mode");
}

#[test]
fn serve_lenient_rejects_oversized_archive_bytes_in_place() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"a1\",\"op\":\"archive\",\
                 \"bytes\":999999}\n\
                 {\"tenant\":\"acme\",\"request_id\":\"a2\",\"op\":\"archive\",\"bytes\":64}\n";
    let out = serve_with_input(&["--lenient", "--max-batch", "100"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(
        lines[0].contains("\"status\":\"rejected\"") && lines[0].contains("admission cap"),
        "oversized archive must be rejected in place: {}",
        lines[0]
    );
    assert!(lines[1].contains("\"round_trip\":true"));
}

#[test]
fn serve_lenient_answers_unknown_op_after_valid_ops() {
    let input = "{\"tenant\":\"acme\",\"request_id\":\"v1\",\"op\":\"generate\",\
                 \"clusters\":2,\"len\":20}\n\
                 {\"tenant\":\"acme\",\"request_id\":\"v2\",\"op\":\"archive\",\"bytes\":48}\n\
                 {\"tenant\":\"acme\",\"request_id\":\"u1\",\"op\":\"teleport\"}\n";
    let out = serve_with_input(&["--lenient"], input);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].contains("\"round_trip\":true"));
    assert!(
        lines[2].contains("\"status\":\"rejected\"") && lines[2].contains("teleport"),
        "unknown op must answer in place after valid ops: {}",
        lines[2]
    );
}

#[test]
fn serve_lenient_isolates_a_tenant_whose_requests_all_fault() {
    // "evil" sends only runtime-faulting datasets; "good" sends healthy ops.
    let mut with_evil = String::new();
    let mut good_only = String::new();
    for i in 0..4 {
        let good = format!(
            "{{\"tenant\":\"good\",\"request_id\":\"g{i}\",\"op\":\"generate\",\
             \"clusters\":3,\"len\":22}}\n"
        );
        with_evil.push_str(&good);
        good_only.push_str(&good);
        with_evil.push_str(&format!(
            "{{\"tenant\":\"evil\",\"request_id\":\"e{i}\",\"op\":\"simulate\",\
             \"dataset\":\">ACGT\\nAXGT\\n\"}}\n"
        ));
    }
    let mixed = serve_with_input(&["--lenient", "--seed", "9"], &with_evil);
    let solo = serve_with_input(&["--lenient", "--seed", "9"], &good_only);
    assert_eq!(mixed.status.code(), Some(0));
    assert_eq!(solo.status.code(), Some(0));
    let mixed_out = String::from_utf8_lossy(&mixed.stdout);
    for line in mixed_out.lines().filter(|l| l.contains("\"tenant\":\"evil\"")) {
        assert!(
            line.contains("\"status\":\"error\""),
            "evil's faults must answer in place: {line}"
        );
    }
    let good_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("\"tenant\":\"good\""))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        good_lines(&mixed_out),
        good_lines(&String::from_utf8_lossy(&solo.stdout)),
        "a fully-faulting tenant must not perturb another tenant's responses"
    );
}

#[test]
fn archive_with_bounded_decode_window_round_trips() {
    let out = dnasim()
        .args(["archive", "--bytes", "256", "--batch-size", "16"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round-trip OK"));
    assert!(stdout.contains("decoded"), "window stats must be reported");
}

#[test]
fn profile_reports_cluster_kernel_diagnostics() {
    let twin = tmp("twin-simd.txt");
    dnasim()
        .args(["generate", "--out", twin.to_str().unwrap(), "--small", "--clusters", "20"])
        .output()
        .unwrap();
    let out = dnasim()
        .args(["profile", "--data", twin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cluster kernel:"), "diagnostic line missing:\n{stdout}");
    assert!(stdout.contains("pruned by error ball"));
    assert!(
        stdout.contains("simd avx2") || stdout.contains("simd neon") || stdout.contains("simd scalar"),
        "diagnostic line must name the backend:\n{stdout}"
    );
}

#[test]
fn archive_imperfect_counts_kernel_work() {
    let out = dnasim()
        .args(["archive", "--bytes", "256", "--imperfect"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round-trip OK"));
    let line = stdout
        .lines()
        .find(|l| l.starts_with("cluster kernel:"))
        .unwrap_or_else(|| panic!("no kernel diagnostic in:\n{stdout}"));
    // Imperfect clustering really clusters, so the counters must move.
    let candidates: u64 = line
        .split(" candidates")
        .next()
        .and_then(|prefix| prefix.rsplit(' ').next())
        .and_then(|word| word.parse().ok())
        .unwrap_or_else(|| panic!("unparseable kernel diagnostic: {line}"));
    assert!(candidates > 0, "clustering ran but counted nothing: {line}");
}

#[test]
fn simd_off_flag_forces_scalar_backend_with_identical_output() {
    let auto = dnasim().args(["archive", "--bytes", "256", "--imperfect"]).output().unwrap();
    let off = dnasim()
        .args(["archive", "--bytes", "256", "--imperfect", "--simd", "off"])
        .output()
        .unwrap();
    assert_eq!(off.status.code(), Some(0), "{}", String::from_utf8_lossy(&off.stderr));
    let off_text = String::from_utf8_lossy(&off.stdout);
    assert!(off_text.contains("simd scalar"), "--simd off must pin the scalar tier:\n{off_text}");
    // Every backend is exact: apart from the backend name, output matches.
    let auto_text = String::from_utf8_lossy(&auto.stdout);
    let strip = |s: &str| {
        s.lines()
            .map(|l| l.split(", simd ").next().unwrap_or(l).to_owned())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&auto_text), strip(&off_text));
}

#[test]
fn simd_env_var_forces_scalar_backend() {
    let out = dnasim()
        .args(["archive", "--bytes", "128", "--imperfect"])
        .env("DNASIM_SIMD", "off")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("simd scalar"));
}

#[test]
fn simd_rejects_unknown_backend() {
    let out = dnasim().args(["profile", "--simd", "bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus") && stderr.contains("auto"));
}
