//! Minimal command-line argument parsing.
//!
//! The sanctioned dependency set has no CLI parser, so this is a small
//! hand-rolled `--flag value` scanner with typed lookups.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (`--key` with no value stores an empty string,
    /// acting as a boolean flag).
    pub options: HashMap<String, String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A required option is missing.
    Missing {
        /// Option name (without `--`).
        name: String,
    },
    /// An option failed to parse as the requested type.
    Invalid {
        /// Option name.
        name: String,
        /// The offending value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// The subcommand is not one dnasim knows.
    UnknownCommand {
        /// The unrecognised subcommand.
        name: String,
    },
    /// A choice-valued argument (model, algorithm, layer, …) got a value
    /// outside its closed set.
    UnknownChoice {
        /// Argument name (without `--`).
        name: &'static str,
        /// The offending value.
        value: String,
        /// The accepted values, for the error message.
        choices: &'static str,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Missing { name } => write!(f, "missing required option --{name}"),
            ArgsError::Invalid {
                name,
                value,
                expected,
            } => write!(f, "option --{name}={value} is not a valid {expected}"),
            ArgsError::UnknownCommand { name } => {
                write!(f, "unknown command '{name}' (try 'dnasim help')")
            }
            ArgsError::UnknownChoice {
                name,
                value,
                choices,
            } => write!(f, "unknown {name} '{value}' (expected one of: {choices})"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                args.options.insert(name.to_owned(), value);
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                args.positional.push(token);
            }
        }
        args
    }

    /// Whether a boolean flag (e.g. `--full`) was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgsError> {
        self.get(name).ok_or_else(|| ArgsError::Missing {
            name: name.to_owned(),
        })
    }

    /// An optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(value) => value.parse().map_err(|_| ArgsError::Invalid {
                name: name.to_owned(),
                value: value.to_owned(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let args = Args::parse(["generate", "--clusters", "100", "--seed", "7"]);
        assert_eq!(args.command.as_deref(), Some("generate"));
        assert_eq!(args.get("clusters"), Some("100"));
        assert_eq!(args.get_or("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn parses_positional_arguments() {
        let args = Args::parse(["experiment", "table-2.1", "--full"]);
        assert_eq!(args.command.as_deref(), Some("experiment"));
        assert_eq!(args.positional, vec!["table-2.1"]);
        assert!(args.flag("full"));
    }

    #[test]
    fn boolean_flags_have_empty_values() {
        let args = Args::parse(["run", "--verbose", "--out", "x.txt"]);
        assert!(args.flag("verbose"));
        assert_eq!(args.get("out"), Some("x.txt"));
    }

    #[test]
    fn adjacent_flags_do_not_consume_each_other() {
        let args = Args::parse(["run", "--a", "--b", "v"]);
        assert!(args.flag("a"));
        assert_eq!(args.get("a"), Some(""));
        assert_eq!(args.get("b"), Some("v"));
    }

    #[test]
    fn missing_required_option_errors() {
        let args = Args::parse(["run"]);
        let err = args.require("data").unwrap_err();
        assert!(err.to_string().contains("--data"));
    }

    #[test]
    fn invalid_typed_option_errors() {
        let args = Args::parse(["run", "--n", "abc"]);
        let err = args.get_or("n", 0usize).unwrap_err();
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse(["run"]);
        assert_eq!(args.get_or("n", 42usize).unwrap(), 42);
        assert!(!args.flag("full"));
    }

    #[test]
    fn empty_input() {
        let args = Args::parse(Vec::<String>::new());
        assert_eq!(args.command, None);
        assert!(args.positional.is_empty());
    }

    #[test]
    fn usage_error_messages_name_the_problem() {
        let unknown = ArgsError::UnknownCommand {
            name: "frobnicate".to_owned(),
        };
        assert!(unknown.to_string().contains("frobnicate"));
        let choice = ArgsError::UnknownChoice {
            name: "algo",
            value: "wrong".to_owned(),
            choices: "bma | majority",
        };
        let text = choice.to_string();
        assert!(text.contains("wrong") && text.contains("bma"));
    }
}
