//! `dnasim` — the command-line interface to the DNA-storage channel
//! simulator.
//!
//! ```text
//! dnasim generate    --out twin.txt [--clusters 10000] [--len 110] [--seed S]
//! dnasim profile     --data twin.txt [--top-k 10]
//! dnasim simulate    --data real.txt --model naive|dnasimulator|keoliya[:LAYER] --out sim.txt
//! dnasim convert     --in real.txt --out real.dnb [--format text|binary]
//! dnasim reconstruct --data file.txt --algo bma|divbma|iterative|iterative-twoway|majority
//!                    [--coverage N] [--min-coverage M]
//! dnasim evaluate    --real real.txt --sim sim.txt [--coverage N]
//! dnasim experiment  <id> [--full]     # table-2.1, table-2.2, table-3.1, ...
//! dnasim archive     --bytes 4096 [--imperfect] [--strict|--lenient] [--threads N]
//! dnasim chaos       [--smoke] [--seeds N] [--threads N] [--json]
//! dnasim serve       [--seed S] [--window N] [--batch-size N] [--max-batch N]
//!                    [--cluster-budget N] [--lenient] [--threads N]
//!                    [--default-deadline N] [--retries N]
//! ```
//!
//! `simulate`, `archive` and `chaos` accept `--threads N` (default:
//! `DNASIM_THREADS`, then all cores); results are byte-identical for every
//! thread count.
//!
//! `generate`, `profile` and `simulate` accept `--stream` to run the
//! bounded-memory pipeline (at most `--batch-size` clusters in flight,
//! default 256), and `archive` accepts `--batch-size N` to bound the decode
//! window; outputs stay byte-identical to the in-memory paths.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error (usage is
//! printed to stderr), `3` archive completed degraded (lenient mode with
//! unrecoverable strands), `4` serve's response consumer hung up (broken
//! pipe on stdout — a clean shutdown, not a server fault).

mod args;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use dnasim_channel::{
    CoverageModel, DnaSimulatorModel, ErrorModel, KeoliyaModel, Simulator, SimulatorLayer,
};
use dnasim_core::rng::{seeded, SeedSequence, SimRng};
use dnasim_core::{Dataset, PrefetchSource};
use dnasim_dataset::{
    read_dataset_auto, write_dataset_format, AnyDatasetReader, AnyDatasetWriter, Format,
    NanoporeTwinConfig,
};
use dnasim_faults::ChaosSuite;
use dnasim_par::ThreadPool;
use dnasim_pipeline::{
    archive_round_trip_on, archive_round_trip_stream, evaluate_reconstruction,
    fixed_coverage_protocol, ArchiveConfig, ArchiveMode, Experiments,
};
use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
use dnasim_reconstruct::{
    BmaLookahead, DividerBma, Iterative, MajorityVote, TraceReconstructor, TwoWayIterative,
};
use dnasim_serve::{serve, ProtocolError, ServeConfig, ServeError};

use args::{Args, ArgsError};

/// Exit code for usage/argument errors (usage is printed to stderr).
const EXIT_USAGE: u8 = 2;
/// Exit code for a lenient archive that completed with data loss.
const EXIT_DEGRADED: u8 = 3;
/// Exit code for a serve session whose response consumer hung up (broken
/// pipe on stdout) — a clean shutdown, not a server fault.
const EXIT_OUTPUT_CLOSED: u8 = 4;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = apply_simd_mode(&args).and_then(|()| match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("profile") => cmd_profile(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("convert") => cmd_convert(&args),
        Some("reconstruct") => cmd_reconstruct(&args),
        Some("evaluate") => cmd_evaluate(&args),
        Some("stats") => cmd_stats(&args),
        Some("experiment") => cmd_experiment(&args),
        Some("archive") => cmd_archive(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("serve") => cmd_serve(&args),
        Some("help") | None => {
            println!("{}", usage_text());
            Ok(CliOutcome::Ok)
        }
        Some(other) => Err(ArgsError::UnknownCommand {
            name: other.to_owned(),
        }
        .into()),
    });
    match result {
        Ok(CliOutcome::Ok) => ExitCode::SUCCESS,
        Ok(CliOutcome::Degraded) => ExitCode::from(EXIT_DEGRADED),
        Ok(CliOutcome::OutputClosed) => ExitCode::from(EXIT_OUTPUT_CLOSED),
        Err(e) => {
            eprintln!("error: {e}");
            // Malformed serve requests are usage errors too: the JSONL
            // protocol is part of the CLI contract, so a bad request line
            // gets the same exit code and usage text as a bad flag.
            if e.downcast_ref::<ArgsError>().is_some()
                || e.downcast_ref::<ProtocolError>().is_some()
            {
                eprintln!("\n{}", usage_text());
                ExitCode::from(EXIT_USAGE)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// What a successfully completed command reports back to `main`.
enum CliOutcome {
    /// Full success — exit 0.
    Ok,
    /// The command finished but with degraded results — exit 3.
    Degraded,
    /// The serve response consumer closed the pipe — exit 4.
    OutputClosed,
}

type CliResult = Result<CliOutcome, Box<dyn std::error::Error>>;

/// Applies the global `--simd auto|off` override before dispatch
/// (`DNASIM_SIMD=off` is the env-var equivalent when the flag is absent).
/// Every kernel backend is exact, so this knob only changes throughput —
/// command output is byte-identical either way.
fn apply_simd_mode(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.get("simd") {
        None => Ok(()),
        Some("auto") => {
            dnasim_metrics::set_simd_mode(dnasim_metrics::SimdMode::Auto);
            Ok(())
        }
        Some("off") => {
            dnasim_metrics::set_simd_mode(dnasim_metrics::SimdMode::Off);
            Ok(())
        }
        Some(other) => Err(ArgsError::UnknownChoice {
            name: "simd",
            value: other.to_owned(),
            choices: "auto | off",
        }
        .into()),
    }
}

/// The clustering diagnostic line: process-wide kernel/prune counters and
/// the active SIMD backend. Identical wording everywhere it appears so
/// stream/non-stream output comparisons stay byte-equal.
fn cluster_kernel_line() -> String {
    let stats = dnasim_cluster::process_cluster_stats();
    format!(
        "cluster kernel: {} calls ({} lanes), {} candidates, {} pruned by error ball, simd {}",
        stats.kernel_calls,
        stats.kernel_lanes,
        stats.candidates,
        stats.pruned,
        dnasim_metrics::simd_tier_name()
    )
}

fn usage_text() -> &'static str {
    "dnasim — DNA-storage noisy-channel simulator\n\n\
     commands:\n\
     \x20 generate    --out FILE [--clusters N] [--len L] [--seed S] [--small]\n\
     \x20             [--stream] [--batch-size N] [--threads N] [--format text|binary]\n\
     \x20 profile     --data FILE [--top-k K] [--save MODEL] [--stream] [--batch-size N]\n\
     \x20             [--prefetch] [--format text|binary]\n\
     \x20 simulate    --data FILE --model MODEL --out FILE [--seed S] [--model-file MODEL]\n\
     \x20             [--threads N] [--stream] [--batch-size N] [--prefetch]\n\
     \x20             [--format text|binary]\n\
     \x20             MODEL: naive | dnasimulator | keoliya[:naive|cond|spatial|second]\n\
     \x20 convert     --in FILE --out FILE [--format text|binary]\n\
     \x20             (input format auto-detected; default output: text)\n\
     \x20 reconstruct --data FILE --algo ALGO [--coverage N] [--min-coverage M]\n\
     \x20             ALGO: bma | divbma | iterative | iterative-twoway | majority\n\
     \x20 evaluate    --real FILE --sim FILE [--coverage N]\n\
     \x20 stats       --data FILE\n\
     \x20 experiment  ID [--full]   (table-2.1 table-2.2 table-3.1 table-3.2 fig-3.3 ext-twoway ext-layers fidelity)\n\
     \x20 archive     [--bytes N] [--imperfect] [--seed S] [--reads N] [--strict|--lenient]\n\
     \x20             [--threads N] [--batch-size N] [--format text|binary]\n\
     \x20 chaos       [--smoke] [--seeds N] [--threads N] [--json]\n\
     \x20 serve       [--seed S] [--window N] [--batch-size N] [--max-batch N]\n\
     \x20             [--cluster-budget N] [--lenient] [--threads N]\n\
     \x20             [--default-deadline N] [--retries N]\n\
     \x20             JSONL requests on stdin -> JSONL responses on stdout; each\n\
     \x20             line needs \"tenant\", \"request_id\" and \"op\" (generate |\n\
     \x20             corrupt | simulate | evaluate | archive), plus an optional\n\
     \x20             per-request \"deadline\" in work units (1 unit = 1 cluster)\n\n\
     \x20 --threads N defaults to $DNASIM_THREADS, then to all cores; output\n\
     \x20 is byte-identical for every thread count\n\
     \x20 --stream processes at most --batch-size clusters at a time (default\n\
     \x20 256); streamed output is byte-identical to the in-memory path\n\
     \x20 --format selects the cluster-file codec a command writes (readers\n\
     \x20 auto-detect by magic bytes); --prefetch decodes the next batch on a\n\
     \x20 dedicated I/O worker while the current one computes — output is\n\
     \x20 byte-identical with or without it\n\
     \x20 --simd auto|off selects the edit-distance kernel backend (auto\n\
     \x20 detects AVX2/NEON at runtime; off forces the portable fallback;\n\
     \x20 DNASIM_SIMD=off is the env equivalent); all backends are exact,\n\
     \x20 so output is byte-identical either way\n\
     \x20 --default-deadline N meters requests without their own deadline;\n\
     \x20 --retries N grants seeded retries to requests that fail at runtime;\n\
     \x20 with --cluster-budget N, requests estimated over N clusters of total\n\
     \x20 work are shed with status \"rejected\", reason \"overloaded\"\n\n\
     exit codes: 0 success, 1 runtime failure, 2 usage error, 3 degraded\n\
     archive, 4 serve response consumer hung up (broken pipe)"
}

fn load(path: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    Ok(read_dataset_auto(BufReader::new(File::open(path)?))?)
}

/// The `--format text|binary` choice (default: text for writers; readers
/// auto-detect when the flag is absent).
fn parse_format(args: &Args) -> Result<Format, ArgsError> {
    match args.get("format") {
        None => Ok(Format::Text),
        Some(value) => value.parse().map_err(|_| ArgsError::UnknownChoice {
            name: "format",
            value: value.to_owned(),
            choices: "text | binary",
        }),
    }
}

/// Opens a cluster file for streaming with the codec auto-detected from
/// the magic bytes (commands that *read* accept either format; `--format`
/// names the format a command *writes*, except `profile`, which has no
/// output and uses it to pin the input codec).
fn open_detected(
    path: &str,
) -> Result<AnyDatasetReader<BufReader<File>>, Box<dyn std::error::Error>> {
    Ok(AnyDatasetReader::detect(BufReader::new(File::open(path)?))?)
}

/// Opens a cluster file honoring an explicit `--format` (a mismatch is a
/// typed parse error), falling back to auto-detection.
fn open_cluster_source(
    args: &Args,
    path: &str,
) -> Result<AnyDatasetReader<BufReader<File>>, Box<dyn std::error::Error>> {
    match args.get("format") {
        Some(_) => Ok(AnyDatasetReader::with_format(
            BufReader::new(File::open(path)?),
            parse_format(args)?,
        )),
        None => open_detected(path),
    }
}

/// The worker pool for `--threads N`; without the flag, defers to
/// `DNASIM_THREADS` and then to available parallelism.
fn thread_pool(args: &Args) -> Result<ThreadPool, ArgsError> {
    Ok(match args.get("threads") {
        Some(_) => ThreadPool::new(args.get_or("threads", 1usize)?),
        None => ThreadPool::from_env(),
    })
}

/// The streaming window size for `--batch-size N` (default 256 clusters).
fn batch_size(args: &Args) -> Result<usize, ArgsError> {
    args.get_or("batch-size", 256usize)
}

fn parse_algorithm(name: &str) -> Result<Box<dyn TraceReconstructor>, ArgsError> {
    match name {
        "bma" => Ok(Box::new(BmaLookahead::default())),
        "divbma" => Ok(Box::new(DividerBma)),
        "iterative" => Ok(Box::new(Iterative::default())),
        "iterative-twoway" => Ok(Box::new(TwoWayIterative::default())),
        "majority" => Ok(Box::new(MajorityVote)),
        other => Err(ArgsError::UnknownChoice {
            name: "algorithm",
            value: other.to_owned(),
            choices: "bma | divbma | iterative | iterative-twoway | majority",
        }),
    }
}

fn parse_layer(name: &str) -> Result<SimulatorLayer, ArgsError> {
    match name {
        "naive" => Ok(SimulatorLayer::Naive),
        "cond" => Ok(SimulatorLayer::ConditionalLongDel),
        "spatial" => Ok(SimulatorLayer::SpatialSkew),
        "second" => Ok(SimulatorLayer::SecondOrder),
        other => Err(ArgsError::UnknownChoice {
            name: "layer",
            value: other.to_owned(),
            choices: "naive | cond | spatial | second",
        }),
    }
}

fn cmd_generate(args: &Args) -> CliResult {
    let out = args.require("out")?;
    let mut config = if args.flag("small") {
        NanoporeTwinConfig::small()
    } else {
        NanoporeTwinConfig::default()
    };
    config.cluster_count = args.get_or("clusters", config.cluster_count)?;
    config.strand_len = args.get_or("len", config.strand_len)?;
    config.seed = args.get_or("seed", config.seed)?;
    let format = parse_format(args)?;
    let (clusters, reads, erasures) = if args.flag("stream") {
        let pool = thread_pool(args)?;
        let mut writer = AnyDatasetWriter::new(BufWriter::new(File::create(out)?), format);
        let window = config.generate_stream(batch_size(args)?, &pool, &mut writer)?;
        let counts = (
            writer.clusters_written(),
            writer.reads_written(),
            writer.erasures_written(),
        );
        writer.into_inner()?;
        println!(
            "streamed {} batches, window high-watermark {} clusters",
            window.batches, window.high_watermark
        );
        counts
    } else {
        let dataset = config.generate();
        write_dataset_format(&dataset, BufWriter::new(File::create(out)?), format)?;
        (
            dataset.len(),
            dataset.total_reads(),
            dataset.erasure_count(),
        )
    };
    let mean = if clusters == 0 {
        0.0
    } else {
        reads as f64 / clusters as f64
    };
    println!(
        "wrote {clusters} clusters ({reads} reads, mean coverage {mean:.2}, {erasures} erasures) \
         to {out}",
    );
    Ok(CliOutcome::Ok)
}

fn cmd_profile(args: &Args) -> CliResult {
    let data = args.require("data")?;
    let top_k = args.get_or("top-k", 10usize)?;
    let mut rng = seeded(args.get_or("seed", 0u64)?);
    // `from_source` draws from the rng in the same cluster order as
    // `from_dataset`, so both paths print identical statistics.
    let stats = if args.flag("stream") {
        let batch = batch_size(args)?;
        let (stats, window) = if args.flag("prefetch") {
            let mut source = PrefetchSource::spawn(open_cluster_source(args, data)?, batch)?;
            ErrorStats::from_source(&mut source, batch, TieBreak::Random, &mut rng)?
        } else {
            let mut source = open_cluster_source(args, data)?;
            ErrorStats::from_source(&mut source, batch, TieBreak::Random, &mut rng)?
        };
        // Stderr, so the statistics on stdout stay byte-identical to the
        // in-memory path.
        eprintln!(
            "stream window: {} batch(es), peak {} cluster(s) / {} read(s) resident",
            window.batches, window.high_watermark, window.peak_resident_reads
        );
        stats
    } else {
        ErrorStats::from_dataset(&load(data)?, TieBreak::Random, &mut rng)
    };
    println!(
        "reads: {}   aggregate error rate: {:.4}",
        stats.read_count(),
        stats.aggregate_error_rate()
    );
    println!(
        "long deletions: p = {:.5}, mean length {:.2}",
        stats.long_deletion_probability(),
        stats.long_deletion_mean_length()
    );
    use dnasim_core::{Base, ErrorKind};
    println!("conditional probabilities P(kind | base):");
    for base in Base::ALL {
        print!("  {base}:");
        for kind in ErrorKind::ALL {
            print!("  {kind}={:.5}", stats.conditional_probability(base, kind));
        }
        println!();
    }
    let (top, share) = stats.top_second_order(top_k);
    println!(
        "top {top_k} second-order errors ({:.1}% of all errors):",
        share * 100.0
    );
    for (op, stat) in top {
        println!("  {op}: {} occurrences", stat.count);
    }
    let model = LearnedModel::from_stats(&stats, top_k);
    println!(
        "spatial multipliers: start {:.2}, interior {:.2}, end {:.2}",
        model.spatial_multiplier(0),
        model.spatial_multiplier(model.strand_len / 2),
        model.spatial_multiplier(model.strand_len.saturating_sub(1)),
    );
    // Profiling never clusters, so the counters are zero here — the line
    // documents the active SIMD backend and keeps the streamed and
    // in-memory outputs identical (both print the same zeros).
    println!("{}", cluster_kernel_line());
    if let Some(path) = args.get("save") {
        std::fs::write(path, model.to_text())?;
        println!("saved learned model to {path}");
    }
    Ok(CliOutcome::Ok)
}

fn cmd_simulate(args: &Args) -> CliResult {
    if args.flag("stream") {
        return cmd_simulate_stream(args);
    }
    let dataset = load(args.require("data")?)?;
    let out = args.require("out")?;
    let model_spec = args.require("model")?;
    let seed = args.get_or("seed", 1u64)?;
    let mut rng = seeded(seed);
    let pool = thread_pool(args)?;
    // Per-cluster streams are forked from the root seed, so the simulated
    // bytes are identical for every --threads value.
    let seq = SeedSequence::new(seed);

    let simulated = if let Some(layer_name) = model_spec.strip_prefix("keoliya") {
        let layer = match layer_name.strip_prefix(':') {
            Some(l) => parse_layer(l)?,
            None => SimulatorLayer::SecondOrder,
        };
        // Reuse a previously saved model, or learn one from the dataset.
        let learned = match args.get("model-file") {
            Some(path) => LearnedModel::from_text(&std::fs::read_to_string(path)?)?,
            None => {
                let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
                LearnedModel::from_stats(&stats, 10)
            }
        };
        let model = KeoliyaModel::new(learned, layer);
        Simulator::new(model, CoverageModel::Fixed(0))
            .resimulate_matching_on(&dataset, &seq, &pool)?
    } else {
        match model_spec {
            "naive" => {
                let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
                let learned = LearnedModel::from_stats(&stats, 10);
                let model = KeoliyaModel::new(learned, SimulatorLayer::Naive);
                Simulator::new(model, CoverageModel::Fixed(0))
                    .resimulate_matching_on(&dataset, &seq, &pool)?
            }
            "dnasimulator" => Simulator::new(
                DnaSimulatorModel::nanopore_default(),
                CoverageModel::Fixed(0),
            )
            .resimulate_matching_on(&dataset, &seq, &pool)?,
            other => return Err(format!("unknown model '{other}'").into()),
        }
    };
    write_dataset_format(
        &simulated,
        BufWriter::new(File::create(out)?),
        parse_format(args)?,
    )?;
    println!(
        "simulated {} clusters ({} reads) with model '{model_spec}' to {out}",
        simulated.len(),
        simulated.total_reads()
    );
    Ok(CliOutcome::Ok)
}

/// The `--stream` path of `simulate`: learns the model with one bounded
/// pass over the input file, then resimulates it cluster-batch by
/// cluster-batch straight into the output file. Byte-identical to the
/// in-memory path — `ErrorStats::from_source` draws from the rng in the
/// same cluster order as `from_dataset`, and every cluster's error stream
/// is forked from the root seed by its global index.
fn cmd_simulate_stream(args: &Args) -> CliResult {
    let data = args.require("data")?;
    let out = args.require("out")?;
    let model_spec = args.require("model")?;
    let seed = args.get_or("seed", 1u64)?;
    let mut rng = seeded(seed);
    let pool = thread_pool(args)?;
    let batch = batch_size(args)?;
    let seq = SeedSequence::new(seed);

    let learn = |rng: &mut SimRng| -> Result<LearnedModel, Box<dyn std::error::Error>> {
        match args.get("model-file") {
            Some(path) => Ok(LearnedModel::from_text(&std::fs::read_to_string(path)?)?),
            None => {
                let mut source = open_detected(data)?;
                let (stats, _) =
                    ErrorStats::from_source(&mut source, batch, TieBreak::Random, rng)?;
                Ok(LearnedModel::from_stats(&stats, 10))
            }
        }
    };

    let (clusters, reads) = if let Some(layer_name) = model_spec.strip_prefix("keoliya") {
        let layer = match layer_name.strip_prefix(':') {
            Some(l) => parse_layer(l)?,
            None => SimulatorLayer::SecondOrder,
        };
        let model = KeoliyaModel::new(learn(&mut rng)?, layer);
        let simulator = Simulator::new(model, CoverageModel::Fixed(0));
        resimulate_streamed(&simulator, args, data, out, &seq, batch, &pool)?
    } else {
        match model_spec {
            "naive" => {
                let model = KeoliyaModel::new(learn(&mut rng)?, SimulatorLayer::Naive);
                let simulator = Simulator::new(model, CoverageModel::Fixed(0));
                resimulate_streamed(&simulator, args, data, out, &seq, batch, &pool)?
            }
            "dnasimulator" => {
                let simulator = Simulator::new(
                    DnaSimulatorModel::nanopore_default(),
                    CoverageModel::Fixed(0),
                );
                resimulate_streamed(&simulator, args, data, out, &seq, batch, &pool)?
            }
            other => return Err(format!("unknown model '{other}'").into()),
        }
    };
    println!("simulated {clusters} clusters ({reads} reads) with model '{model_spec}' to {out}");
    Ok(CliOutcome::Ok)
}

/// Pipes `data` through `simulator.resimulate_stream` into `out`, printing
/// the window statistics; returns (clusters, reads) written. Honors
/// `--format` on the output, auto-detects the input, and with
/// `--prefetch` decodes batch k+1 on a dedicated worker while batch k is
/// in the pool — the output bytes are identical either way.
fn resimulate_streamed<M: ErrorModel + Sync>(
    simulator: &Simulator<M>,
    args: &Args,
    data: &str,
    out: &str,
    seq: &SeedSequence,
    batch: usize,
    pool: &ThreadPool,
) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let mut writer =
        AnyDatasetWriter::new(BufWriter::new(File::create(out)?), parse_format(args)?);
    let window = if args.flag("prefetch") {
        let mut source = PrefetchSource::spawn(open_detected(data)?, batch)?;
        simulator.resimulate_stream(&mut source, seq, batch, pool, &mut writer)?
    } else {
        let mut source = open_detected(data)?;
        simulator.resimulate_stream(&mut source, seq, batch, pool, &mut writer)?
    };
    let counts = (writer.clusters_written(), writer.reads_written());
    writer.into_inner()?;
    println!(
        "streamed {} batches, window high-watermark {} clusters",
        window.batches, window.high_watermark
    );
    Ok(counts)
}

/// `dnasim convert --in A --out B [--format text|binary]`: stream a
/// cluster file (either format, auto-detected) into the chosen output
/// format, one cluster in memory at a time.
fn cmd_convert(args: &Args) -> CliResult {
    let input = args.require("in")?;
    let out = args.require("out")?;
    let format = parse_format(args)?;
    let mut source = open_detected(input)?;
    let in_format = source.format();
    let mut writer = AnyDatasetWriter::new(BufWriter::new(File::create(out)?), format);
    while let Some(cluster) = source.next_cluster()? {
        writer.write_cluster(&cluster)?;
    }
    let (clusters, reads) = (writer.clusters_written(), writer.reads_written());
    writer.into_inner()?;
    println!("converted {clusters} clusters ({reads} reads) {in_format} -> {format}: {input} -> {out}");
    Ok(CliOutcome::Ok)
}

fn cmd_reconstruct(args: &Args) -> CliResult {
    let dataset = load(args.require("data")?)?;
    let algorithm = parse_algorithm(args.require("algo")?)?;
    let dataset = match args.get("coverage") {
        Some(_) => {
            let coverage = args.get_or("coverage", 5usize)?;
            let min = args.get_or("min-coverage", 10usize)?;
            fixed_coverage_protocol(&dataset, min, coverage)
        }
        None => dataset,
    };
    let report = evaluate_reconstruction(&dataset, &algorithm);
    println!("{}: {report}", algorithm.name());
    Ok(CliOutcome::Ok)
}

fn cmd_evaluate(args: &Args) -> CliResult {
    let real = load(args.require("real")?)?;
    let sim = load(args.require("sim")?)?;
    let prepare = |ds: &Dataset| -> Result<Dataset, args::ArgsError> {
        Ok(match args.get("coverage") {
            Some(_) => fixed_coverage_protocol(
                ds,
                args.get_or("min-coverage", 10usize)?,
                args.get_or("coverage", 5usize)?,
            ),
            None => ds.clone(),
        })
    };
    let real = prepare(&real)?;
    let sim = prepare(&sim)?;
    {
        // §3.1 closed-form fidelity distances (lower is better).
        let mut rng = seeded(args.get_or("seed", 0u64)?);
        let fidelity = dnasim_pipeline::simulator_fidelity(&real, &sim, &mut rng);
        println!("fidelity: {fidelity}");
    }
    println!(
        "{:<12} {:>20} {:>20}",
        "algorithm", "real (str%/chr%)", "sim (str%/chr%)"
    );
    for algorithm in [
        parse_algorithm("bma")?,
        parse_algorithm("divbma")?,
        parse_algorithm("iterative")?,
    ] {
        let r = evaluate_reconstruction(&real, &algorithm);
        let s = evaluate_reconstruction(&sim, &algorithm);
        println!(
            "{:<12} {:>9.2} /{:>8.2} {:>9.2} /{:>8.2}",
            algorithm.name(),
            r.per_strand_percent(),
            r.per_char_percent(),
            s.per_strand_percent(),
            s.per_char_percent()
        );
    }
    Ok(CliOutcome::Ok)
}

fn cmd_stats(args: &Args) -> CliResult {
    let dataset = load(args.require("data")?)?;
    println!("clusters:        {}", dataset.len());
    println!("reads:           {}", dataset.total_reads());
    println!("mean coverage:   {:.2}", dataset.mean_coverage());
    if let Some((lo, hi)) = dataset.coverage_range() {
        println!("coverage range:  {lo}..{hi}");
    }
    println!("erasures:        {}", dataset.erasure_count());
    if let Some(len) = dataset.strand_len() {
        println!("strand length:   {len}");
    }
    let hist = dataset.coverage_histogram();
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    println!("coverage histogram (bucketed):");
    for (bucket, chunk) in hist.chunks(10).enumerate() {
        let count: usize = chunk.iter().sum();
        let bar = "#".repeat(count * 40 / (max * chunk.len().min(10)).max(1));
        println!("  {:>3}-{:<3} {count:>6} |{bar}", bucket * 10, bucket * 10 + 9);
    }
    Ok(CliOutcome::Ok)
}

fn cmd_experiment(args: &Args) -> CliResult {
    let id = args
        .positional
        .first()
        .ok_or("experiment requires an id (e.g. table-3.1)")?;
    let config = if args.flag("full") {
        NanoporeTwinConfig::default()
    } else {
        NanoporeTwinConfig::small()
    };
    let experiments = Experiments::new(&config);
    match id.as_str() {
        "table-2.1" => println!("{}", experiments.table_2_1()),
        "table-2.2" => println!("{}", experiments.table_2_2()),
        "table-3.1" => println!("{}", experiments.ablation_table(5)),
        "table-3.2" => println!("{}", experiments.ablation_table(6)),
        "fig-3.3" => {
            println!("Iterative accuracy vs coverage (fixed-coverage protocol):");
            println!("{:>3} {:>10} {:>10}", "N", "strand %", "char %");
            for (n, cell) in experiments.coverage_sweep(10) {
                println!("{n:>3} {:>10.2} {:>10.2}", cell.per_strand, cell.per_char);
            }
        }
        "ext-twoway" => println!("{}", experiments.two_way_comparison(5)),
        "ext-layers" => println!("{}", experiments.extensions_table(5)),
        "fidelity" => {
            println!("§3.1 fidelity distances vs real data (lower is better):");
            for (label, report) in experiments.fidelity_by_layer() {
                println!("  {label:<20} {report}");
            }
        }
        other => {
            return Err(format!(
                "unknown experiment '{other}' — the full set lives in the repro harness: \
                 cargo run -p dnasim-bench --release --bin repro -- {other}"
            )
            .into())
        }
    }
    Ok(CliOutcome::Ok)
}

fn cmd_archive(args: &Args) -> CliResult {
    // The archive round trip is in-memory (no cluster file touches disk),
    // so `--format` is validated for interface uniformity with serve's
    // archive op but does not change the result.
    let _ = parse_format(args)?;
    let bytes = args.get_or("bytes", 1024usize)?;
    let mut rng = seeded(args.get_or("seed", 7u64)?);
    let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    if args.flag("strict") && args.flag("lenient") {
        return Err(ArgsError::UnknownChoice {
            name: "mode",
            value: "--strict --lenient".to_owned(),
            choices: "--strict | --lenient",
        }
        .into());
    }
    let mode = if args.flag("lenient") {
        ArchiveMode::Lenient
    } else {
        ArchiveMode::Strict
    };
    let defaults = ArchiveConfig::default();
    let config = ArchiveConfig {
        imperfect_clustering: args.flag("imperfect"),
        sequencing_reads_per_strand: args
            .get_or("reads", defaults.sequencing_reads_per_strand)?,
        mode,
        ..defaults
    };
    let report = match args.get("batch-size") {
        Some(_) => {
            let (report, window) = archive_round_trip_stream(
                &data,
                &config,
                &mut rng,
                &thread_pool(args)?,
                batch_size(args)?,
            )?;
            println!(
                "decoded {} windows, high-watermark {} clusters, peak {} reads resident",
                window.batches, window.high_watermark, window.peak_resident_reads
            );
            report
        }
        None => archive_round_trip_on(&data, &config, &mut rng, &thread_pool(args)?)?,
    };
    let ok = report.data[..data.len()] == data[..];
    if config.imperfect_clustering {
        // Imperfect clustering ran the greedy pass: surface how much
        // kernel work the error-ball filter and bank tier saved.
        println!("{}", cluster_kernel_line());
    }
    println!(
        "archived {bytes} bytes as {} strands, sequenced {} reads, parity recoveries: {}, \
         round-trip {}",
        report.strands_written,
        report.reads_sequenced,
        report.strands_recovered_by_parity,
        if ok { "OK" } else { "CORRUPT" }
    );
    if report.clusters_quarantined > 0 || report.is_degraded() {
        println!(
            "quarantined {} strand slots (erasure budget {} per group); \
             {} groups over budget; {} payload strands zero-filled",
            report.clusters_quarantined,
            report.loss_budget_per_group,
            report.groups_exceeding_budget,
            report.strands_unrecovered,
        );
    }
    if report.is_degraded() {
        println!("round trip DEGRADED — rerun with --strict to make this an error");
        return Ok(CliOutcome::Degraded);
    }
    if !ok {
        return Err("payload mismatch after round trip".into());
    }
    Ok(CliOutcome::Ok)
}

/// The long-lived batch RPC loop: JSONL requests on stdin, JSONL
/// responses on stdout, session summary on stderr (stdout stays pure
/// protocol). Strict mode turns the first malformed request line into a
/// usage error (exit 2) after answering everything admitted before it;
/// `--lenient` answers malformed lines in place with
/// `"status":"rejected"` and keeps the stream alive.
fn cmd_serve(args: &Args) -> CliResult {
    let config = ServeConfig {
        seed: args.get_or("seed", 0u64)?,
        window: args.get_or("window", 8usize)?,
        batch_size: batch_size(args)?,
        max_batch: args.get_or("max-batch", 4096usize)?,
        cluster_budget: match args.get("cluster-budget") {
            Some(_) => Some(args.get_or("cluster-budget", 0usize)?),
            None => None,
        },
        lenient: args.flag("lenient"),
        default_deadline: match args.get("default-deadline") {
            Some(_) => Some(args.get_or("default-deadline", 0u64)?),
            None => None,
        },
        retries: args.get_or("retries", 0usize)?,
    };
    if config.default_deadline == Some(0) {
        return Err(ArgsError::UnknownChoice {
            name: "default-deadline",
            value: "0".to_owned(),
            choices: "a work-unit count of at least 1",
        }
        .into());
    }
    let pool = thread_pool(args)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let result = serve(stdin.lock(), &mut out, &config, &pool);
    drop(out);
    let report = match result {
        Ok(report) => report,
        // The consumer hung up: everything written so far was delivered,
        // nothing was lost on the server side. Exit 4 tells the operator
        // it was the pipe, not the pipeline.
        Err(e) if e.is_broken_pipe() => {
            eprintln!("serve: response consumer hung up; shutting down");
            return Ok(CliOutcome::OutputClosed);
        }
        Err(ServeError::Protocol(p)) => return Err(Box::new(p)),
        Err(e) => return Err(Box::new(e)),
    };
    eprintln!(
        "served {} request(s) in {} window(s): {} ok, {} degraded, {} error, {} rejected, \
         {} deadline, {} shed",
        report.requests, report.windows, report.ok, report.degraded, report.errors,
        report.rejected, report.deadlines, report.shed
    );
    eprintln!(
        "peak in-flight: {} request(s) / {} cluster(s); stream high-watermark {} cluster(s)",
        report.peak_inflight_requests, report.peak_inflight_clusters,
        report.stream.high_watermark
    );
    Ok(CliOutcome::Ok)
}

fn cmd_chaos(args: &Args) -> CliResult {
    let suite = if args.flag("smoke") {
        ChaosSuite::smoke()
    } else if args.get("seeds").is_some() {
        ChaosSuite::new(args.get_or("seeds", 2u64)?)
    } else {
        ChaosSuite::from_env()
    };
    let pool = thread_pool(args)?;
    let json = args.flag("json");
    if !json {
        println!(
            "running {} fault-injection cases on {} threads…",
            suite.planned_cases(),
            pool.threads()
        );
    }
    let report = suite.run_on(&pool);
    if json {
        // Machine-readable: stdout is exactly one JSON object.
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
    }
    if report.is_clean() {
        Ok(CliOutcome::Ok)
    } else if json {
        Err("chaos suite caught panics (see \"panics\" in the JSON summary)".into())
    } else {
        Err("chaos suite caught panics (see summary above)".into())
    }
}
