//! Differential suite: parallel output is *byte-identical* to serial.
//!
//! The determinism contract of `dnasim-par` (DESIGN.md §9) is that thread
//! count is an execution detail, never an input: every stage wired onto the
//! pool must produce the same bytes at `--threads 1`, 2, 4, and 8. Each
//! test here runs one pipeline stage across that thread grid and ≥5 seeds
//! and demands exact equality — not statistical closeness — so a scheduling
//! leak into the randomness (or a merge that depends on completion order)
//! fails loudly.

use dnasim::channel::{CoverageModel, NaiveModel, Simulator};
use dnasim::dataset::{write_dataset, NanoporeTwinConfig};
use dnasim::faults::ChaosSuite;
use dnasim::par::ThreadPool;
use dnasim::pipeline::{archive_round_trip_on, ArchiveConfig};
use dnasim::prelude::*;
use dnasim::reconstruct::reconstruct_clusters;

const SEEDS: [u64; 5] = [1, 7, 42, 0xD151_C0DE, u64::MAX - 3];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Serialises a dataset to its on-disk byte representation.
fn dataset_bytes(ds: &Dataset) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_dataset(ds, &mut buffer).expect("in-memory write cannot fail");
    buffer
}

#[test]
fn simulated_reads_are_identical_across_thread_counts() {
    for seed in SEEDS {
        let mut rng = seeded(seed);
        let references: Vec<Strand> = (0..30).map(|_| Strand::random(60, &mut rng)).collect();
        let sim = Simulator::new(
            NaiveModel::with_total_rate(0.059),
            CoverageModel::negative_binomial(8.0, 2.0),
        );
        let seq = SeedSequence::new(seed);
        let baseline = dataset_bytes(
            &sim.simulate_on(&references, &seq, &ThreadPool::serial())
                .unwrap(),
        );
        for threads in THREADS {
            let out = dataset_bytes(
                &sim.simulate_on(&references, &seq, &ThreadPool::new(threads))
                    .unwrap(),
            );
            assert_eq!(out, baseline, "simulate: seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn twin_generation_is_identical_across_thread_counts() {
    for seed in SEEDS {
        let config = NanoporeTwinConfig {
            cluster_count: 25,
            seed,
            ..NanoporeTwinConfig::small()
        };
        let baseline = dataset_bytes(&config.generate());
        for threads in THREADS {
            let out = dataset_bytes(&config.generate_on(&ThreadPool::new(threads)).unwrap());
            assert_eq!(out, baseline, "twin: seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn reconstruction_consensus_is_identical_across_thread_counts() {
    for seed in SEEDS {
        let config = NanoporeTwinConfig {
            cluster_count: 20,
            erasure_count: 0,
            seed,
            ..NanoporeTwinConfig::small()
        };
        let dataset = config.generate();
        for algorithm in [
            Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor + Send + Sync>,
            Box::new(Iterative::default()),
            Box::new(MajorityVote),
        ] {
            let baseline =
                reconstruct_clusters(&algorithm, &dataset, 110, &ThreadPool::serial()).unwrap();
            for threads in THREADS {
                let out =
                    reconstruct_clusters(&algorithm, &dataset, 110, &ThreadPool::new(threads))
                        .unwrap();
                assert_eq!(
                    out,
                    baseline,
                    "reconstruct {}: seed {seed}, {threads} threads",
                    algorithm.name()
                );
            }
        }
    }
}

#[test]
fn accuracy_reports_are_identical_across_thread_counts() {
    for seed in SEEDS {
        let config = NanoporeTwinConfig {
            cluster_count: 16,
            seed,
            ..NanoporeTwinConfig::small()
        };
        let dataset = config.generate();
        let baseline = evaluate_reconstruction(&dataset, &MajorityVote);
        for threads in THREADS {
            let report =
                evaluate_reconstruction_on(&dataset, &MajorityVote, &ThreadPool::new(threads))
                    .unwrap();
            assert_eq!(report, baseline, "evaluate: seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn archive_reports_are_identical_across_thread_counts() {
    for seed in SEEDS {
        let data: Vec<u8> = (0..240u32).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
        let config = ArchiveConfig {
            sequencing_reads_per_strand: 10,
            ..ArchiveConfig::default()
        };
        let baseline = archive_round_trip_on(&data, &config, &mut seeded(seed), &ThreadPool::serial());
        for threads in THREADS {
            let report =
                archive_round_trip_on(&data, &config, &mut seeded(seed), &ThreadPool::new(threads));
            match (&baseline, &report) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "archive: seed {seed}, {threads} threads"),
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "archive error: seed {seed}, {threads} threads"
                ),
                _ => panic!("archive outcome diverged: seed {seed}, {threads} threads"),
            }
        }
    }
}

#[test]
fn chaos_verdicts_are_identical_across_thread_counts() {
    // Verdict grids carry no dataset-level seed input beyond the grid
    // itself, so one sweep per thread count covers the whole fault × seed
    // product (ChaosSuite::new(5) runs 5 case seeds per fault kind).
    let suite = ChaosSuite::new(5);
    let baseline = suite.run();
    for threads in THREADS {
        let report = suite.run_on(&ThreadPool::new(threads));
        assert_eq!(report, baseline, "chaos verdicts: {threads} threads");
    }
}
