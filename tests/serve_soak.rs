//! The serve-tier soak harness: a deterministic multi-tenant traffic
//! generator driven through `dnasim::serve`, diffed request by request
//! against isolated serial execution.
//!
//! The serve contract under test (DESIGN.md §12):
//!
//! 1. **Replay isolation** — every request's randomness lives in the
//!    namespace `derive_seq(tenant).derive_seq(request_id)`, so replaying
//!    any single request alone (via [`execute`]) reproduces its in-service
//!    response byte for byte, whatever traffic surrounded it.
//! 2. **Thread invariance** — the full response stream is byte-identical
//!    at 1, 2 and 4 worker threads.
//! 3. **Per-tenant quarantine** — injected malformed lines and faulty
//!    requests answer in place (`rejected` / `error`) and removing them
//!    from the traffic leaves every other tenant's responses unchanged.
//!
//! The full soak interleaves ≥1000 requests across 8 tenants; with
//! `DNASIM_BENCH_FAST=1` it shrinks to a ≥240-request smoke (used by
//! scripts/verify.sh).

use dnasim::core::rng::{seeded, RngExt, SeedSequence};
use dnasim::par::ThreadPool;
use dnasim::prelude::*;
use dnasim::serve::{execute, serve, Request, ServeConfig};

const TENANTS: [&str; 8] = [
    "acme", "betalab", "cryogen", "deepsea", "eon", "fjord", "genomica", "helix",
];

/// Number of requests in the soak: ≥1000 full, ≥240 smoke.
fn soak_size() -> usize {
    let fast = std::env::var_os("DNASIM_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty());
    if fast {
        240
    } else {
        1000
    }
}

/// A small deterministic cluster file for simulate/evaluate requests,
/// rendered as an escaped JSON string value.
fn dataset_field(rng: &mut SimRng) -> String {
    let clusters = rng.random_range(2..5usize);
    let len = rng.random_range(18..30usize);
    let mut text = String::new();
    for _ in 0..clusters {
        let reference = Strand::random(len, rng);
        text.push('>');
        text.push_str(&reference.to_string());
        text.push_str("\\n");
        for _ in 0..rng.random_range(2..5usize) {
            // Clean reads: the channel model inside the op supplies noise.
            text.push_str(&reference.to_string());
            text.push_str("\\n");
        }
        text.push_str("\\n");
    }
    text
}

/// One deterministic request line. `index` seeds both the identity and the
/// op mix; the generator never consults wall-clock or global state, so the
/// same `(seed, index)` always produces the same line.
fn request_line(rng: &mut SimRng, tenant: &str, index: usize) -> String {
    let id = format!("req-{index:05}");
    match rng.random_range(0..8u32) {
        0 | 1 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"generate\",\
             \"clusters\":{},\"len\":{}}}",
            rng.random_range(2..9usize),
            rng.random_range(20..41usize)
        ),
        2 | 3 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"corrupt\",\
             \"count\":{},\"len\":{},\"reads\":{}}}",
            rng.random_range(2..7usize),
            rng.random_range(20..41usize),
            rng.random_range(1..5usize)
        ),
        // The archive round trip (codec + reconstruction) is by far the
        // heaviest op, so it gets a 1/8 weight and a small payload — the
        // soak measures interleaving and isolation, not archive throughput.
        4 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"archive\",\
             \"bytes\":{},\"reads\":{}}}",
            rng.random_range(24..97usize),
            rng.random_range(3..7usize)
        ),
        5 | 6 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"simulate\",\
             \"model\":\"keoliya:naive\",\"dataset\":\"{}\"}}",
            dataset_field(rng)
        ),
        _ => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"evaluate\",\
             \"algorithm\":\"majority\",\"dataset\":\"{}\"}}",
            dataset_field(rng)
        ),
    }
}

/// The deterministic soak traffic: `count` requests interleaved across all
/// tenants in a seed-driven order.
fn traffic(seed: u64, count: usize) -> Vec<String> {
    let mut rng = seeded(seed);
    (0..count)
        .map(|i| {
            let tenant = TENANTS[rng.random_range(0..TENANTS.len())];
            request_line(&mut rng, tenant, i)
        })
        .collect()
}

fn run_serve(lines: &[String], config: &ServeConfig, threads: usize) -> String {
    let input = lines.join("\n");
    let mut output = Vec::new();
    let report = serve(
        input.as_bytes(),
        &mut output,
        config,
        &ThreadPool::new(threads),
    )
    .expect("soak traffic must be served without a session error");
    assert_eq!(
        report.requests,
        lines.len(),
        "every non-blank line is a request"
    );
    String::from_utf8(output).expect("responses are UTF-8")
}

fn soak_config() -> ServeConfig {
    ServeConfig {
        seed: 0x5EA_50AC,
        window: 16,
        batch_size: 64,
        ..ServeConfig::default()
    }
}

/// The headline differential: thousands of interleaved multi-tenant
/// requests, byte-identical across worker counts, and every response
/// byte-identical to replaying its request alone through [`execute`].
#[test]
fn soak_responses_match_isolated_serial_execution_at_every_thread_count() {
    let config = soak_config();
    let lines = traffic(7, soak_size());
    let baseline = run_serve(&lines, &config, 1);
    for threads in [2, 4] {
        let parallel = run_serve(&lines, &config, threads);
        assert_eq!(
            baseline, parallel,
            "serve output diverged at {threads} worker threads"
        );
    }
    // Isolated replay: each request alone, serial, fresh namespace root.
    let root = SeedSequence::new(config.seed);
    let responses: Vec<&str> = baseline.lines().collect();
    assert_eq!(responses.len(), lines.len());
    for (line_no, (line, response)) in lines.iter().zip(&responses).enumerate() {
        let request = Request::parse(line, line_no + 1, config.max_batch)
            .expect("soak generator emits only valid requests");
        let isolated = execute(&request, &root, config.batch_size);
        assert_eq!(
            *response, isolated.line,
            "request {line_no} is not reproducible in isolation"
        );
    }
}

/// Responses must not depend on admission windowing: reshaping the
/// in-flight window (size and cluster budget) cannot change a byte.
#[test]
fn soak_responses_are_invariant_to_admission_window_shape() {
    let lines = traffic(21, soak_size() / 4);
    let baseline = run_serve(&lines, &soak_config(), 2);
    for (window, budget) in [(1, None), (4, Some(96)), (64, Some(1 << 20))] {
        let config = ServeConfig {
            window,
            cluster_budget: budget,
            ..soak_config()
        };
        assert_eq!(
            baseline,
            run_serve(&lines, &config, 2),
            "window={window} budget={budget:?} changed the response stream"
        );
    }
}

/// Builds mixed traffic where one tenant ("mallory") injects malformed
/// lines and runtime-faulty requests at deterministic positions.
fn traffic_with_faults(seed: u64, count: usize) -> Vec<String> {
    let mut lines = traffic(seed, count);
    for i in (0..count).step_by(17) {
        lines[i] = match i % 3 {
            // Malformed JSON: rejected at the protocol layer.
            0 => format!("{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\", broken"),
            // Valid JSON, unknown op: rejected with identity attached.
            1 => format!(
                "{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\",\"op\":\"selfdestruct\"}}"
            ),
            // Well-formed request whose dataset fails at runtime: an
            // isolated per-request "error" response.
            _ => format!(
                "{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\",\"op\":\"simulate\",\
                 \"dataset\":\">ACGT\\nAXGT\\n\"}}"
            ),
        };
    }
    lines
}

/// Picks the responses belonging to `tenant` out of a response stream.
fn responses_for<'t>(output: &'t str, tenant: &str) -> Vec<&'t str> {
    let needle = format!("\"tenant\":\"{tenant}\"");
    output.lines().filter(|l| l.contains(&needle)).collect()
}

/// Per-tenant quarantine: faulty traffic answers in place and removing it
/// leaves every other tenant's responses byte-identical — no panic, no
/// cross-tenant contamination.
#[test]
fn injected_faults_are_quarantined_per_tenant() {
    let config = ServeConfig {
        lenient: true,
        ..soak_config()
    };
    let count = (soak_size() / 2).max(200);
    let with_faults = traffic_with_faults(33, count);
    let output = run_serve(&with_faults, &config, 4);
    assert_eq!(output.lines().count(), count);

    // Every injected line answered in place with a non-ok status.
    let mallory = responses_for(&output, "mallory");
    assert!(!mallory.is_empty(), "fault injection produced no traffic");
    for response in &mallory {
        assert!(
            response.contains("\"status\":\"rejected\"")
                || response.contains("\"status\":\"error\""),
            "faulty request not quarantined: {response}"
        );
    }

    // Filtered traffic: the same stream with mallory's lines removed.
    let clean: Vec<String> = with_faults
        .iter()
        .filter(|l| !l.contains("mallory"))
        .cloned()
        .collect();
    let clean_output = run_serve(&clean, &config, 4);
    for tenant in TENANTS {
        assert_eq!(
            responses_for(&output, tenant),
            responses_for(&clean_output, tenant),
            "removing mallory's faulty requests changed tenant {tenant}'s responses"
        );
    }
}

/// Strict mode honours the abort contract under the same soak traffic:
/// the response stream is a faithful prefix, then the session fails with
/// the offending line number.
#[test]
fn strict_mode_soak_aborts_at_the_first_injected_fault() {
    let config = soak_config();
    let count = soak_size() / 4;
    let lines = traffic_with_faults(55, count);
    let first_bad = (0..count)
        .step_by(17)
        .find(|i| i % 3 != 2)
        .expect("traffic contains protocol faults");
    let input = lines.join("\n");
    let mut output = Vec::new();
    let err = serve(
        input.as_bytes(),
        &mut output,
        &config,
        &ThreadPool::new(2),
    )
    .expect_err("strict mode must abort on the injected protocol fault");
    let message = err.to_string();
    assert!(
        message.contains(&format!("request line {}", first_bad + 1)),
        "abort must cite line {}: {message}",
        first_bad + 1
    );
    // Everything before the fault was answered; nothing after it was.
    let answered = String::from_utf8(output).expect("utf8");
    assert_eq!(answered.lines().count(), first_bad);
}
