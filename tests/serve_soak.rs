//! The serve-tier soak harness: a deterministic multi-tenant traffic
//! generator driven through `dnasim::serve`, diffed request by request
//! against isolated serial execution.
//!
//! The serve contract under test (DESIGN.md §12):
//!
//! 1. **Replay isolation** — every request's randomness lives in the
//!    namespace `derive_seq(tenant).derive_seq(request_id)`, so replaying
//!    any single request alone (via [`execute`]) reproduces its in-service
//!    response byte for byte, whatever traffic surrounded it.
//! 2. **Thread invariance** — the full response stream is byte-identical
//!    at 1, 2 and 4 worker threads.
//! 3. **Per-tenant quarantine** — injected malformed lines and faulty
//!    requests answer in place (`rejected` / `error`) and removing them
//!    from the traffic leaves every other tenant's responses unchanged.
//!
//! The full soak interleaves ≥1000 requests across 8 tenants; with
//! `DNASIM_BENCH_FAST=1` it shrinks to a ≥240-request smoke (used by
//! scripts/verify.sh).

use dnasim::core::rng::{seeded, RngExt, SeedSequence};
use dnasim::core::CancelToken;
use dnasim::par::ThreadPool;
use dnasim::prelude::*;
use dnasim::serve::{
    execute, execute_with, serve, serve_with_shutdown, Request, ServeConfig, ServeReport,
};

const TENANTS: [&str; 8] = [
    "acme", "betalab", "cryogen", "deepsea", "eon", "fjord", "genomica", "helix",
];

/// Number of requests in the soak: ≥1000 full, ≥240 smoke.
fn soak_size() -> usize {
    let fast = std::env::var_os("DNASIM_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty());
    if fast {
        240
    } else {
        1000
    }
}

/// A small deterministic cluster file for simulate/evaluate requests,
/// rendered as an escaped JSON string value.
fn dataset_field(rng: &mut SimRng) -> String {
    let clusters = rng.random_range(2..5usize);
    let len = rng.random_range(18..30usize);
    let mut text = String::new();
    for _ in 0..clusters {
        let reference = Strand::random(len, rng);
        text.push('>');
        text.push_str(&reference.to_string());
        text.push_str("\\n");
        for _ in 0..rng.random_range(2..5usize) {
            // Clean reads: the channel model inside the op supplies noise.
            text.push_str(&reference.to_string());
            text.push_str("\\n");
        }
        text.push_str("\\n");
    }
    text
}

/// One deterministic request line. `index` seeds both the identity and the
/// op mix; the generator never consults wall-clock or global state, so the
/// same `(seed, index)` always produces the same line.
fn request_line(rng: &mut SimRng, tenant: &str, index: usize) -> String {
    let id = format!("req-{index:05}");
    match rng.random_range(0..8u32) {
        0 | 1 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"generate\",\
             \"clusters\":{},\"len\":{}}}",
            rng.random_range(2..9usize),
            rng.random_range(20..41usize)
        ),
        2 | 3 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"corrupt\",\
             \"count\":{},\"len\":{},\"reads\":{}}}",
            rng.random_range(2..7usize),
            rng.random_range(20..41usize),
            rng.random_range(1..5usize)
        ),
        // The archive round trip (codec + reconstruction) is by far the
        // heaviest op, so it gets a 1/8 weight and a small payload — the
        // soak measures interleaving and isolation, not archive throughput.
        4 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"archive\",\
             \"bytes\":{},\"reads\":{}}}",
            rng.random_range(24..97usize),
            rng.random_range(3..7usize)
        ),
        5 | 6 => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"simulate\",\
             \"model\":\"keoliya:naive\",\"dataset\":\"{}\"}}",
            dataset_field(rng)
        ),
        _ => format!(
            "{{\"tenant\":\"{tenant}\",\"request_id\":\"{id}\",\"op\":\"evaluate\",\
             \"algorithm\":\"majority\",\"dataset\":\"{}\"}}",
            dataset_field(rng)
        ),
    }
}

/// The deterministic soak traffic: `count` requests interleaved across all
/// tenants in a seed-driven order.
fn traffic(seed: u64, count: usize) -> Vec<String> {
    let mut rng = seeded(seed);
    (0..count)
        .map(|i| {
            let tenant = TENANTS[rng.random_range(0..TENANTS.len())];
            request_line(&mut rng, tenant, i)
        })
        .collect()
}

fn run_serve(lines: &[String], config: &ServeConfig, threads: usize) -> String {
    let input = lines.join("\n");
    let mut output = Vec::new();
    let report = serve(
        input.as_bytes(),
        &mut output,
        config,
        &ThreadPool::new(threads),
    )
    .expect("soak traffic must be served without a session error");
    assert_eq!(
        report.requests,
        lines.len(),
        "every non-blank line is a request"
    );
    String::from_utf8(output).expect("responses are UTF-8")
}

fn soak_config() -> ServeConfig {
    ServeConfig {
        seed: 0x5EA_50AC,
        window: 16,
        batch_size: 64,
        ..ServeConfig::default()
    }
}

/// The headline differential: thousands of interleaved multi-tenant
/// requests, byte-identical across worker counts, and every response
/// byte-identical to replaying its request alone through [`execute`].
#[test]
fn soak_responses_match_isolated_serial_execution_at_every_thread_count() {
    let config = soak_config();
    let lines = traffic(7, soak_size());
    let baseline = run_serve(&lines, &config, 1);
    for threads in [2, 4] {
        let parallel = run_serve(&lines, &config, threads);
        assert_eq!(
            baseline, parallel,
            "serve output diverged at {threads} worker threads"
        );
    }
    // Isolated replay: each request alone, serial, fresh namespace root.
    let root = SeedSequence::new(config.seed);
    let responses: Vec<&str> = baseline.lines().collect();
    assert_eq!(responses.len(), lines.len());
    for (line_no, (line, response)) in lines.iter().zip(&responses).enumerate() {
        let request = Request::parse(line, line_no + 1, config.max_batch)
            .expect("soak generator emits only valid requests");
        let isolated = execute(&request, &root, config.batch_size);
        assert_eq!(
            *response, isolated.line,
            "request {line_no} is not reproducible in isolation"
        );
    }
}

/// Responses must not depend on admission windowing: reshaping the
/// in-flight window (size and cluster budget) cannot change a byte.
#[test]
fn soak_responses_are_invariant_to_admission_window_shape() {
    let lines = traffic(21, soak_size() / 4);
    let baseline = run_serve(&lines, &soak_config(), 2);
    for (window, budget) in [(1, None), (4, Some(96)), (64, Some(1 << 20))] {
        let config = ServeConfig {
            window,
            cluster_budget: budget,
            ..soak_config()
        };
        assert_eq!(
            baseline,
            run_serve(&lines, &config, 2),
            "window={window} budget={budget:?} changed the response stream"
        );
    }
}

/// Builds mixed traffic where one tenant ("mallory") injects malformed
/// lines and runtime-faulty requests at deterministic positions.
fn traffic_with_faults(seed: u64, count: usize) -> Vec<String> {
    let mut lines = traffic(seed, count);
    for i in (0..count).step_by(17) {
        lines[i] = match i % 3 {
            // Malformed JSON: rejected at the protocol layer.
            0 => format!("{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\", broken"),
            // Valid JSON, unknown op: rejected with identity attached.
            1 => format!(
                "{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\",\"op\":\"selfdestruct\"}}"
            ),
            // Well-formed request whose dataset fails at runtime: an
            // isolated per-request "error" response.
            _ => format!(
                "{{\"tenant\":\"mallory\",\"request_id\":\"bad-{i}\",\"op\":\"simulate\",\
                 \"dataset\":\">ACGT\\nAXGT\\n\"}}"
            ),
        };
    }
    lines
}

/// Picks the responses belonging to `tenant` out of a response stream.
fn responses_for<'t>(output: &'t str, tenant: &str) -> Vec<&'t str> {
    let needle = format!("\"tenant\":\"{tenant}\"");
    output.lines().filter(|l| l.contains(&needle)).collect()
}

/// Per-tenant quarantine: faulty traffic answers in place and removing it
/// leaves every other tenant's responses byte-identical — no panic, no
/// cross-tenant contamination.
#[test]
fn injected_faults_are_quarantined_per_tenant() {
    let config = ServeConfig {
        lenient: true,
        ..soak_config()
    };
    let count = (soak_size() / 2).max(200);
    let with_faults = traffic_with_faults(33, count);
    let output = run_serve(&with_faults, &config, 4);
    assert_eq!(output.lines().count(), count);

    // Every injected line answered in place with a non-ok status.
    let mallory = responses_for(&output, "mallory");
    assert!(!mallory.is_empty(), "fault injection produced no traffic");
    for response in &mallory {
        assert!(
            response.contains("\"status\":\"rejected\"")
                || response.contains("\"status\":\"error\""),
            "faulty request not quarantined: {response}"
        );
    }

    // Filtered traffic: the same stream with mallory's lines removed.
    let clean: Vec<String> = with_faults
        .iter()
        .filter(|l| !l.contains("mallory"))
        .cloned()
        .collect();
    let clean_output = run_serve(&clean, &config, 4);
    for tenant in TENANTS {
        assert_eq!(
            responses_for(&output, tenant),
            responses_for(&clean_output, tenant),
            "removing mallory's faulty requests changed tenant {tenant}'s responses"
        );
    }
}

/// Strict mode honours the abort contract under the same soak traffic:
/// the response stream is a faithful prefix, then the session fails with
/// the offending line number.
#[test]
fn strict_mode_soak_aborts_at_the_first_injected_fault() {
    let config = soak_config();
    let count = soak_size() / 4;
    let lines = traffic_with_faults(55, count);
    let first_bad = (0..count)
        .step_by(17)
        .find(|i| i % 3 != 2)
        .expect("traffic contains protocol faults");
    let input = lines.join("\n");
    let mut output = Vec::new();
    let err = serve(
        input.as_bytes(),
        &mut output,
        &config,
        &ThreadPool::new(2),
    )
    .expect_err("strict mode must abort on the injected protocol fault");
    let message = err.to_string();
    assert!(
        message.contains(&format!("request line {}", first_bad + 1)),
        "abort must cite line {}: {message}",
        first_bad + 1
    );
    // Everything before the fault was answered; nothing after it was.
    let answered = String::from_utf8(output).expect("utf8");
    assert_eq!(answered.lines().count(), first_bad);
}

// ---------------------------------------------------------------------------
// Cancellation chaos soak: deadlines, shedding, retries, and shutdown drain
// under the same multi-tenant traffic (DESIGN.md §13).
// ---------------------------------------------------------------------------

/// The chaos session: lenient, budgeted, metered, and retrying. The
/// cluster budget (96) sits far below the jumbo requests injected by
/// [`chaos_traffic`] and far above every healthy op it emits, so shedding
/// is exercised without ever touching good traffic.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        lenient: true,
        cluster_budget: Some(96),
        default_deadline: Some(100_000),
        retries: 1,
        ..soak_config()
    }
}

/// Chaos traffic: the healthy soak mix interleaved with protocol poison
/// (malformed JSON, unknown ops), oversized sheddable requests
/// (`jumbo-*`), and requests carrying work-unit deadlines they cannot
/// meet (`tight-*`). Deterministic in `(seed, count)` like [`traffic`].
fn chaos_traffic(seed: u64, count: usize) -> Vec<String> {
    let mut rng = seeded(seed);
    (0..count)
        .map(|i| {
            let tenant = TENANTS[rng.random_range(0..TENANTS.len())];
            match rng.random_range(0..10u32) {
                0 => format!("{{\"tenant\":\"{tenant}\",\"request_id\":\"poison-{i:05}\", nope"),
                1 => format!(
                    "{{\"tenant\":\"{tenant}\",\"request_id\":\"poison-{i:05}\",\"op\":\"warp\"}}"
                ),
                // Estimated load far above chaos_config's cluster budget
                // but well inside the max_batch admission cap: shed, not
                // rejected.
                2 => format!(
                    "{{\"tenant\":\"{tenant}\",\"request_id\":\"jumbo-{i:05}\",\
                     \"op\":\"generate\",\"clusters\":{},\"len\":24}}",
                    rng.random_range(200..400usize)
                ),
                // More clusters than the deadline has work units for: the
                // op is cut mid-stream with a typed deadline response.
                3 => format!(
                    "{{\"tenant\":\"{tenant}\",\"request_id\":\"tight-{i:05}\",\
                     \"op\":\"generate\",\"clusters\":{},\"len\":30,\"deadline\":{}}}",
                    rng.random_range(8..17usize),
                    rng.random_range(1..5usize)
                ),
                _ => request_line(&mut rng, tenant, i),
            }
        })
        .collect()
}

fn run_serve_report(lines: &[String], config: &ServeConfig, threads: usize) -> (String, ServeReport) {
    let input = lines.join("\n");
    let mut output = Vec::new();
    let report = serve(
        input.as_bytes(),
        &mut output,
        config,
        &ThreadPool::new(threads),
    )
    .expect("chaos traffic must be served without a session error");
    (String::from_utf8(output).expect("responses are UTF-8"), report)
}

/// The headline chaos differential: poison, oversized, and
/// deadline-doomed requests interleaved with healthy traffic stay
/// byte-identical across worker counts, answer with their typed statuses,
/// and every line that reached execution replays byte-for-byte through
/// [`execute_with`] under the session's policy.
#[test]
fn chaos_soak_is_thread_invariant_and_replays_under_policy() {
    let config = chaos_config();
    let lines = chaos_traffic(13, (soak_size() / 2).max(200));
    let (baseline, report) = run_serve_report(&lines, &config, 1);
    for threads in [2, 4] {
        let (parallel, _) = run_serve_report(&lines, &config, threads);
        assert_eq!(
            baseline, parallel,
            "chaos serve output diverged at {threads} worker threads"
        );
    }

    // Every fault class actually fired, and every line was answered.
    assert_eq!(baseline.lines().count(), lines.len());
    assert!(report.ok > 0, "chaos traffic produced no healthy responses");
    assert!(report.rejected > 0, "no poison was injected");
    assert!(report.shed > 0, "no oversized request was shed");
    assert!(report.deadlines > 0, "no deadline was tripped");

    // Typed statuses per fault class, and policy-replay for everything
    // that was admitted to execution.
    let root = SeedSequence::new(config.seed);
    let policy = config.policy();
    for (line_no, (line, response)) in lines.iter().zip(baseline.lines()).enumerate() {
        match Request::parse(line, line_no + 1, config.max_batch) {
            Err(_) => assert!(
                response.contains("\"status\":\"rejected\""),
                "poison line {line_no} not rejected in place: {response}"
            ),
            Ok(request) if request.work_estimate() > 96 => {
                assert!(
                    response.contains("\"reason\":\"overloaded\""),
                    "oversized request {line_no} not shed: {response}"
                );
                assert!(response.contains("\"status\":\"rejected\""));
            }
            Ok(request) => {
                let isolated = execute_with(&request, &root, config.batch_size, &policy, None);
                assert_eq!(
                    response, isolated.line,
                    "request {line_no} is not reproducible under the session policy"
                );
                if request.deadline.is_some() {
                    assert!(
                        response.contains("\"status\":\"deadline\"")
                            && response.contains("\"spent\":"),
                        "tight request {line_no} did not trip its deadline: {response}"
                    );
                }
            }
        }
    }
}

/// Shed requests never execute, so deleting them from the traffic leaves
/// every *executed* response byte-identical — admission pressure from an
/// oversized neighbour cannot leak into anyone's randomness. (Protocol
/// rejections are excluded from the diff: they cite absolute line
/// numbers, which shift when lines are removed.)
#[test]
fn shed_requests_leave_surviving_responses_untouched() {
    let executed = |output: &str| -> Vec<String> {
        output
            .lines()
            .filter(|l| !l.contains("\"status\":\"rejected\""))
            .map(str::to_owned)
            .collect()
    };
    let config = chaos_config();
    let lines = chaos_traffic(29, soak_size() / 4);
    let (with_jumbo, _) = run_serve_report(&lines, &config, 4);
    let slim: Vec<String> = lines
        .iter()
        .filter(|l| !l.contains("\"request_id\":\"jumbo-"))
        .cloned()
        .collect();
    assert!(slim.len() < lines.len(), "no jumbo traffic was generated");
    let (without_jumbo, _) = run_serve_report(&slim, &config, 4);
    assert_eq!(
        executed(&with_jumbo),
        executed(&without_jumbo),
        "removing shed requests changed a surviving response"
    );
}

// ---------------------------------------------------------------------------
// Cross-format ops: the "format" field on generate/archive (DESIGN.md §14).
// ---------------------------------------------------------------------------

/// Extracts the `"dataset"` string value from an ok response line. Cluster
/// files only contain `>`, `-`, bases, and newlines, so the only JSON
/// escape present is `\n`.
fn served_dataset(response: &str) -> String {
    let key = "\"dataset\":\"";
    let start = response.find(key).expect("response inlines a dataset") + key.len();
    let rest = &response[start..];
    let end = rest.find('"').expect("dataset string is terminated");
    rest[..end].replace("\\n", "\n")
}

/// The binary `generate` response must describe exactly the bytes the
/// binary codec produces for the dataset the text response inlines: same
/// tenant + request id ⇒ same seed namespace ⇒ same clusters, so the
/// served `dataset_bytes`/`checksum` are verifiable from the text twin.
#[test]
fn binary_generate_response_matches_reencoded_text_response() {
    let config = soak_config();
    let base = "{\"tenant\":\"acme\",\"request_id\":\"fmt-01\",\"op\":\"generate\",\
                \"clusters\":9,\"len\":32";
    let lines = vec![
        format!("{base}}}"),
        format!("{base},\"format\":\"text\"}}"),
        format!("{base},\"format\":\"binary\"}}"),
    ];
    let output = run_serve(&lines, &config, 2);
    let responses: Vec<&str> = output.lines().collect();
    assert_eq!(responses.len(), 3);
    // "format":"text" is the default: explicit and absent answer
    // byte-identically, so pre-format clients see an unchanged protocol.
    assert_eq!(responses[0], responses[1]);
    assert!(responses[0].contains("\"status\":\"ok\""));

    let binary = responses[2];
    assert!(binary.contains("\"status\":\"ok\""), "binary generate failed: {binary}");
    assert!(binary.contains("\"format\":\"binary\""));
    assert!(
        !binary.contains("\"dataset\":\""),
        "binary frames must not be inlined into a JSON response: {binary}"
    );
    // The differential: re-encode the text twin through the binary codec.
    let dataset = read_dataset(served_dataset(responses[0]).as_bytes())
        .expect("served dataset parses");
    let mut encoded = Vec::new();
    write_dataset_format(&dataset, &mut encoded, Format::Binary).expect("binary encode");
    assert!(
        binary.contains(&format!("\"dataset_bytes\":{}", encoded.len())),
        "served size does not match the re-encoded twin: {binary}"
    );
    assert!(
        binary.contains(&format!("\"checksum\":\"{:016x}\"", fnv1a64(&encoded))),
        "served checksum does not match the re-encoded twin: {binary}"
    );
}

/// Unknown `format` values are protocol violations: lenient mode answers
/// `rejected` in place — with the offending value and the tenant identity
/// — and the surrounding requests are untouched.
#[test]
fn unknown_format_is_rejected_in_place_under_lenient_mode() {
    let config = ServeConfig {
        lenient: true,
        ..soak_config()
    };
    let lines = vec![
        "{\"tenant\":\"acme\",\"request_id\":\"f-1\",\"op\":\"generate\",\"clusters\":4,\
         \"len\":24,\"format\":\"parquet\"}"
            .to_string(),
        "{\"tenant\":\"betalab\",\"request_id\":\"f-2\",\"op\":\"archive\",\"bytes\":48,\
         \"lenient\":true,\"format\":\"binary\"}"
            .to_string(),
        "{\"tenant\":\"cryogen\",\"request_id\":\"f-3\",\"op\":\"archive\",\"bytes\":48,\
         \"reads\":4,\"format\":\"gzip\"}"
            .to_string(),
        "{\"tenant\":\"deepsea\",\"request_id\":\"f-4\",\"op\":\"generate\",\"clusters\":4,\
         \"len\":24}"
            .to_string(),
    ];
    let output = run_serve(&lines, &config, 2);
    let responses: Vec<&str> = output.lines().collect();
    assert_eq!(responses.len(), lines.len());

    assert!(responses[0].contains("\"status\":\"rejected\""));
    assert!(responses[0].contains("parquet"), "rejection names the value: {}", responses[0]);
    assert!(responses[0].contains("\"tenant\":\"acme\""), "identity attached: {}", responses[0]);
    // A known format on archive is admission-valid; the round trip runs.
    assert!(
        responses[1].contains("\"status\":\"ok\"") || responses[1].contains("\"status\":\"degraded\""),
        "archive with a known format must execute: {}",
        responses[1]
    );
    assert!(responses[2].contains("\"status\":\"rejected\""));
    assert!(responses[2].contains("gzip"));
    assert!(responses[3].contains("\"status\":\"ok\""), "neighbour affected: {}", responses[3]);

    // Strict mode aborts on the same violation.
    let strict = soak_config();
    let input = lines.join("\n");
    let mut out = Vec::new();
    let err = serve(input.as_bytes(), &mut out, &strict, &ThreadPool::new(2))
        .expect_err("strict mode must abort on an unknown format");
    assert!(err.to_string().contains("parquet"), "{err}");
}

/// A reader that trips the shutdown token once the server has consumed
/// `cancel_at` bytes of the stream — the integration-level stand-in for
/// SIGTERM. Reads are capped at 64 bytes so cancellation lands mid-stream
/// rather than after one giant buffered gulp.
struct CancellingReader {
    data: Vec<u8>,
    pos: usize,
    token: CancelToken,
    cancel_at: usize,
}

impl std::io::Read for CancellingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.cancel_at {
            self.token.cancel();
        }
        let n = buf.len().min(64).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Graceful drain: when the shutdown token trips mid-stream, the server
/// stops admitting, answers every in-flight request in order with a typed
/// `deadline` response, and exits cleanly — and the whole drain is
/// deterministic across worker counts because cancellation is only
/// observed at serial admission boundaries.
#[test]
fn shutdown_mid_stream_drains_in_order_at_every_thread_count() {
    let config = chaos_config();
    let lines = traffic(99, 60);
    let input = lines.join("\n");
    // Cancel once roughly half the stream has been consumed.
    let cancel_at = input.len() / 2;
    let mut outputs = Vec::new();
    for threads in [1, 2, 4] {
        let token = CancelToken::new();
        let reader = CancellingReader {
            data: input.clone().into_bytes(),
            pos: 0,
            token: token.clone(),
            cancel_at,
        };
        let mut output = Vec::new();
        let report = serve_with_shutdown(
            std::io::BufReader::new(reader),
            &mut output,
            &config,
            &ThreadPool::new(threads),
            &token,
        )
        .expect("shutdown drain must not be a session error");
        assert!(report.requests < lines.len(), "cancellation came too late");
        assert!(report.deadlines > 0, "the in-flight window must drain as deadline responses");
        outputs.push(String::from_utf8(output).expect("utf8"));
    }
    assert_eq!(outputs[0], outputs[1], "drain diverged at 2 threads");
    assert_eq!(outputs[0], outputs[2], "drain diverged at 4 threads");

    // Responses arrive in request order: a faithful prefix of the stream.
    let answered = outputs[0].lines().count();
    for (line, response) in lines[..answered].iter().zip(outputs[0].lines()) {
        let id_start = line.find("\"request_id\":\"").expect("traffic carries ids");
        let id = &line[id_start..line[id_start..].find(',').map_or(line.len(), |c| id_start + c)];
        assert!(
            response.contains(id),
            "drained response out of order: expected {id} in {response}"
        );
    }
    // The tail of the answered prefix was cancelled mid-flight.
    let last = outputs[0].lines().last().expect("at least one response");
    assert!(
        last.contains("\"status\":\"deadline\""),
        "the final drained response must be a cancellation: {last}"
    );
}
