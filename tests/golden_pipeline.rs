//! Golden regression test: the end-to-end `simulate → cluster →
//! reconstruct` summary statistics for one fixed seed, pinned to a
//! checked-in snapshot (`golden_pipeline.txt`, next to
//! `repro_full_output.txt`).
//!
//! Future performance work — more threads, different scheduling, refactored
//! hot loops — must not change these numbers. The pipeline here runs on
//! `ThreadPool::from_env()`, so `scripts/verify.sh` exercises the exact
//! same test at `DNASIM_THREADS=1` and `DNASIM_THREADS=4` and diffs the
//! output against the snapshot both times.
//!
//! To regenerate after an *intentional* behaviour change:
//! `DNASIM_UPDATE_GOLDEN=1 cargo test --test golden_pipeline`, then review
//! the snapshot diff like any other code change.

use std::fmt::Write as _;

use dnasim::cluster::GreedyClusterer;
use dnasim::dataset::NanoporeTwinConfig;
use dnasim::par::ThreadPool;
use dnasim::prelude::*;

const SNAPSHOT_PATH: &str = "golden_pipeline.txt";
const SEED: u64 = 0x0060_1DE2;

fn summary() -> String {
    let pool = ThreadPool::from_env();

    // --- Simulate: a fixed twin dataset (fork-per-cluster discipline). ---
    let config = NanoporeTwinConfig {
        cluster_count: 60,
        erasure_count: 2,
        seed: SEED,
        ..NanoporeTwinConfig::small()
    };
    let twin = config.generate_on(&pool).expect("twin generation");

    // --- Cluster: greedy clustering of the shuffled read pool back against
    // the known references. ---
    let references = dnasim::pipeline::references_of(&twin);
    let mut rng = seeded(SEED ^ 0xC1);
    let reads = twin.clone().into_read_pool(&mut rng);
    let clustered = GreedyClusterer::default().cluster_against_references(&reads, &references);

    // --- Reconstruct: per-algorithm accuracy over the clustered dataset. ---
    let mut out = String::new();
    let _ = writeln!(
        out,
        "golden end-to-end pipeline (seed {SEED:#x}, {} clusters, strand len 110)",
        config.cluster_count
    );
    let _ = writeln!(
        out,
        "twin: reads={} mean_coverage={:.4} erasures={}",
        twin.total_reads(),
        twin.mean_coverage(),
        twin.erasure_count()
    );
    let _ = writeln!(
        out,
        "clustered: clusters={} reads={} erasures={}",
        clustered.len(),
        clustered.total_reads(),
        clustered.erasure_count()
    );
    for algorithm in [
        Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor + Send + Sync>,
        Box::new(Iterative::default()),
        Box::new(TwoWayIterative::default()),
        Box::new(MajorityVote),
    ] {
        let report = evaluate_reconstruction_on(&clustered, &algorithm, &pool)
            .expect("parallel evaluation");
        let _ = writeln!(
            out,
            "reconstruct {}: strand={:.4}% char={:.4}%",
            algorithm.name(),
            report.per_strand_percent(),
            report.per_char_percent()
        );
    }
    out
}

#[test]
fn pipeline_summary_matches_golden_snapshot() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let path = std::path::Path::new(manifest_dir).join(SNAPSHOT_PATH);
    let actual = summary();
    if std::env::var_os("DNASIM_UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             DNASIM_UPDATE_GOLDEN=1 cargo test --test golden_pipeline",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "end-to-end summary drifted from {SNAPSHOT_PATH}; if the change is \
         intentional, regenerate with DNASIM_UPDATE_GOLDEN=1 and review the diff"
    );
}
