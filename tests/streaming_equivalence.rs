//! Streaming ⇔ in-memory equivalence: the bounded-memory pipeline must be
//! **byte-identical** to the whole-dataset path for every batch size and
//! thread count (DESIGN.md §11).
//!
//! Why this holds by construction: every cluster's error stream is forked
//! from the root seed by its *global* index (`SeedSequence::fork`), so
//! neither the batch boundaries nor the scheduling order can change a
//! single byte. These tests pin that argument down empirically at batch
//! sizes {1, 7, 64, ∞}, three seeds, and 1 vs 4 worker threads — and
//! re-diff the checked-in `golden_pipeline.txt` snapshot through the
//! streaming entry points.

use std::fmt::Write as _;

use dnasim::cluster::{GreedyClusterer, StreamingClusterer};
use dnasim::dataset::NanoporeTwinConfig;
use dnasim::par::ThreadPool;
use dnasim::pipeline::ArchiveMode;
use dnasim::prelude::*;

const BATCH_SIZES: [usize; 4] = [1, 7, 64, usize::MAX];
const SEEDS: [u64; 3] = [0x0060_1DE2, 11, 4242];

fn twin_config(seed: u64) -> NanoporeTwinConfig {
    NanoporeTwinConfig {
        cluster_count: 33,
        erasure_count: 2,
        seed,
        ..NanoporeTwinConfig::small()
    }
}

fn to_bytes(dataset: &Dataset) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_dataset(dataset, &mut bytes).expect("write to memory");
    bytes
}

#[test]
fn streamed_generation_is_byte_identical() {
    for seed in SEEDS {
        let config = twin_config(seed);
        let whole = to_bytes(&config.generate());
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            for batch_size in BATCH_SIZES {
                let mut writer = DatasetWriter::new(Vec::new());
                let window = config
                    .generate_stream(batch_size, &pool, &mut writer)
                    .expect("stream generation");
                assert!(
                    window.high_watermark <= batch_size,
                    "window exceeded batch size: {} > {batch_size}",
                    window.high_watermark
                );
                assert_eq!(window.clusters, config.cluster_count);
                let bytes = writer.into_inner().expect("flush");
                assert_eq!(
                    bytes, whole,
                    "seed={seed} threads={threads} batch_size={batch_size}"
                );
            }
        }
    }
}

/// The format axis of the equivalence matrix: streamed generation into an
/// [`AnyDatasetWriter`] must be byte-identical to the whole-dataset
/// encoding at every batch size × thread count × format (DESIGN.md §14).
#[test]
fn streamed_generation_is_byte_identical_in_every_format() {
    for seed in SEEDS {
        let config = twin_config(seed);
        let whole = config.generate();
        for format in [Format::Text, Format::Binary] {
            let mut expected = Vec::new();
            write_dataset_format(&whole, &mut expected, format).expect("write to memory");
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                for batch_size in BATCH_SIZES {
                    let mut writer = AnyDatasetWriter::new(Vec::new(), format);
                    let window = config
                        .generate_stream(batch_size, &pool, &mut writer)
                        .expect("stream generation");
                    assert!(window.high_watermark <= batch_size);
                    assert_eq!(window.clusters, config.cluster_count);
                    let bytes = writer.into_inner().expect("flush");
                    assert_eq!(
                        bytes, expected,
                        "seed={seed} format={format} threads={threads} batch_size={batch_size}"
                    );
                }
            }
        }
    }
}

/// Cross-format round trip under streaming: the same dataset encoded in
/// either format, pumped through an auto-detecting reader — with and
/// without the prefetch pump — re-emits identical text bytes at every
/// batch size. The binary path may not change a byte of what the text
/// path carries.
#[test]
fn streamed_round_trip_is_format_invariant_with_and_without_prefetch() {
    for seed in SEEDS {
        let twin = twin_config(seed).generate();
        let text = to_bytes(&twin);
        for format in [Format::Text, Format::Binary] {
            let mut encoded = Vec::new();
            write_dataset_format(&twin, &mut encoded, format).expect("write to memory");
            for batch_size in BATCH_SIZES {
                let mut reader =
                    AnyDatasetReader::detect(&encoded[..]).expect("magic-byte detection");
                assert_eq!(reader.format(), format, "wrong format detected");
                let mut copy = Dataset::new();
                let window = pump(&mut reader, &mut copy, batch_size, Ok).expect("pump");
                assert!(window.high_watermark <= batch_size);
                assert_eq!(
                    to_bytes(&copy),
                    text,
                    "seed={seed} format={format} batch_size={batch_size}"
                );

                // The prefetch pump decodes batch k+1 on its own worker
                // thread; the hand-off must not reorder or drop a cluster.
                let reader = AnyDatasetReader::detect(std::io::Cursor::new(encoded.clone()))
                    .expect("magic-byte detection");
                let mut copy = Dataset::new();
                let window = pump_prefetch(reader, &mut copy, batch_size, Ok)
                    .expect("prefetch pump");
                // Double buffering holds at most two batches in flight.
                assert!(window.high_watermark <= batch_size.saturating_mul(2));
                assert_eq!(
                    to_bytes(&copy),
                    text,
                    "prefetch: seed={seed} format={format} batch_size={batch_size}"
                );
            }
        }
    }
}

#[test]
fn streamed_resimulation_is_byte_identical() {
    for seed in SEEDS {
        let twin = twin_config(seed).generate();
        let mut rng = seeded(seed);
        let stats = ErrorStats::from_dataset(&twin, TieBreak::Random, &mut rng);
        let model = KeoliyaModel::new(
            LearnedModel::from_stats(&stats, 10),
            SimulatorLayer::SecondOrder,
        );
        let simulator = Simulator::new(model, CoverageModel::Fixed(0));
        let seq = SeedSequence::new(seed);
        let whole = to_bytes(
            &simulator
                .resimulate_matching_on(&twin, &seq, &ThreadPool::serial())
                .expect("in-memory resimulation"),
        );
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            for batch_size in BATCH_SIZES {
                let mut source = twin.stream();
                let mut writer = DatasetWriter::new(Vec::new());
                let window = simulator
                    .resimulate_stream(&mut source, &seq, batch_size, &pool, &mut writer)
                    .expect("stream resimulation");
                assert!(window.high_watermark <= batch_size);
                assert_eq!(window.clusters, twin.len());
                let bytes = writer.into_inner().expect("flush");
                assert_eq!(
                    bytes, whole,
                    "seed={seed} threads={threads} batch_size={batch_size}"
                );
            }
        }
    }
}

#[test]
fn streamed_round_trip_through_io_is_lossless() {
    // dataset → text → DatasetReader (as a ClusterSource) → Dataset sink,
    // pumped at every batch size, must reproduce the text byte for byte.
    for seed in SEEDS {
        let twin = twin_config(seed).generate();
        let text = to_bytes(&twin);
        for batch_size in BATCH_SIZES {
            let mut reader = DatasetReader::new(&text[..]);
            let mut copy = Dataset::new();
            let window =
                pump(&mut reader, &mut copy, batch_size, Ok).expect("pump");
            assert!(window.high_watermark <= batch_size);
            assert_eq!(to_bytes(&copy), text, "seed={seed} batch_size={batch_size}");
        }
    }
}

/// Re-runs the checked-in golden pipeline (`tests/golden_pipeline.rs`)
/// with every stage swapped for its streaming counterpart — twin
/// generation through a [`DatasetWriter`]-less [`Dataset`] sink, and
/// reconstruction through [`evaluate_reconstruction_stream`] — and diffs
/// the summary against the same `golden_pipeline.txt` snapshot.
#[test]
fn streamed_pipeline_matches_golden_snapshot() {
    const SEED: u64 = 0x0060_1DE2;
    let pool = ThreadPool::from_env();
    let config = NanoporeTwinConfig {
        cluster_count: 60,
        erasure_count: 2,
        seed: SEED,
        ..NanoporeTwinConfig::small()
    };
    let expected = {
        let manifest_dir = env!("CARGO_MANIFEST_DIR");
        std::fs::read_to_string(std::path::Path::new(manifest_dir).join("golden_pipeline.txt"))
            .expect("golden snapshot (regenerate via golden_pipeline test)")
    };
    for batch_size in BATCH_SIZES {
        // --- Simulate, streamed. ---
        let mut twin = Dataset::new();
        let window = config
            .generate_stream(batch_size, &pool, &mut twin)
            .expect("stream generation");
        assert!(window.high_watermark <= batch_size);

        // Golden-through-binary: detour the twin through the binary codec
        // before every downstream stage — the snapshot must not move a
        // byte when the dataset crosses a binary file boundary.
        let mut encoded = Vec::new();
        write_dataset_format(&twin, &mut encoded, Format::Binary).expect("binary encode");
        let twin = read_dataset_auto(encoded.as_slice()).expect("binary decode");

        // --- Cluster (same in-memory stage as the golden test). ---
        let references = dnasim::pipeline::references_of(&twin);
        let mut rng = seeded(SEED ^ 0xC1);
        let reads = twin.clone().into_read_pool(&mut rng);
        let clustered =
            GreedyClusterer::default().cluster_against_references(&reads, &references);

        // --- Reconstruct, streamed. ---
        let mut out = String::new();
        let _ = writeln!(
            out,
            "golden end-to-end pipeline (seed {SEED:#x}, {} clusters, strand len 110)",
            config.cluster_count
        );
        let _ = writeln!(
            out,
            "twin: reads={} mean_coverage={:.4} erasures={}",
            twin.total_reads(),
            twin.mean_coverage(),
            twin.erasure_count()
        );
        let _ = writeln!(
            out,
            "clustered: clusters={} reads={} erasures={}",
            clustered.len(),
            clustered.total_reads(),
            clustered.erasure_count()
        );
        for algorithm in [
            Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor + Send + Sync>,
            Box::new(Iterative::default()),
            Box::new(TwoWayIterative::default()),
            Box::new(MajorityVote),
        ] {
            let (report, window) = evaluate_reconstruction_stream(
                &mut clustered.stream(),
                &algorithm,
                batch_size,
                &pool,
            )
            .expect("streamed evaluation");
            assert!(window.high_watermark <= batch_size);
            let _ = writeln!(
                out,
                "reconstruct {}: strand={:.4}% char={:.4}%",
                algorithm.name(),
                report.per_strand_percent(),
                report.per_char_percent()
            );
        }
        assert_eq!(
            out, expected,
            "streamed pipeline (batch_size={batch_size}) drifted from golden_pipeline.txt"
        );
    }
}

/// The online clusterer must produce memberships and reference assignments
/// byte-identical to the materialised [`GreedyClusterer`] pass at every
/// batch size × thread count — it is the same decision core, driven read
/// by read, holding only per-group representatives resident.
#[test]
fn streaming_clusterer_matches_materialised_at_any_batch_size() {
    for seed in SEEDS {
        let config = twin_config(seed);
        for threads in [1usize, 4] {
            // The twin itself arrives through the streaming generator (the
            // thread count must not change a byte of the read pool).
            let pool_workers = ThreadPool::new(threads);
            let mut twin = Dataset::new();
            config
                .generate_stream(16, &pool_workers, &mut twin)
                .expect("stream generation");
            let references = dnasim::pipeline::references_of(&twin);
            let mut rng = seeded(seed ^ 0xC1);
            let reads = twin.into_read_pool(&mut rng);
            let expected =
                GreedyClusterer::default().cluster_against_references(&reads, &references);
            for batch_size in BATCH_SIZES {
                let mut clusterer =
                    StreamingClusterer::with_references(GreedyClusterer::default(), &references);
                let mut groups: Vec<Vec<usize>> = Vec::new();
                let mut read_idx = 0usize;
                for window in reads.chunks(batch_size.min(reads.len().max(1))) {
                    for assignment in clusterer.push_batch(window) {
                        if assignment.group == groups.len() {
                            groups.push(Vec::new());
                        }
                        groups[assignment.group].push(read_idx);
                        read_idx += 1;
                    }
                }
                // Group-major assembly reproduces the post-hoc pass's
                // read order exactly.
                let mut assigned: Vec<Vec<Strand>> =
                    references.iter().map(|_| Vec::new()).collect();
                for (gid, group) in groups.iter().enumerate() {
                    if let Some(ref_idx) = clusterer.group_reference(gid) {
                        for &read_idx in group {
                            assigned[ref_idx].push(reads[read_idx].clone());
                        }
                    }
                }
                let streamed: Dataset = references
                    .iter()
                    .zip(assigned)
                    .map(|(reference, cluster_reads)| {
                        Cluster::new(reference.clone(), cluster_reads)
                    })
                    .collect();
                assert_eq!(
                    to_bytes(&streamed),
                    to_bytes(&expected),
                    "seed={seed} threads={threads} batch_size={batch_size}"
                );
                // Resident state is groups, not reads.
                assert!(clusterer.resident_groups() <= references.len() + groups.len());
                assert_eq!(clusterer.reads_seen(), reads.len());
            }
        }
    }
}

/// The fully windowed archive: identical reports at every batch size ×
/// thread count for both clustering modes, with the peak-resident-reads
/// gauge proving the molecule pool never materialises whole.
#[test]
fn windowed_archive_report_is_batch_and_thread_invariant() {
    let data: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
    for imperfect in [false, true] {
        let config = ArchiveConfig {
            imperfect_clustering: imperfect,
            mode: ArchiveMode::Lenient,
            ..ArchiveConfig::default()
        };
        let mut baseline = None;
        for threads in [1usize, 4] {
            for batch_size in BATCH_SIZES {
                let mut rng = seeded(7);
                let (report, window) = archive_round_trip_stream(
                    &data,
                    &config,
                    &mut rng,
                    &ThreadPool::new(threads),
                    batch_size,
                )
                .expect("windowed archive");
                assert_eq!(&report.data[..data.len()], &data[..], "payload lost");
                assert!(
                    window.high_watermark <= batch_size,
                    "decode window exceeded batch size"
                );
                assert!(window.peak_resident_reads > 0, "read gauge never moved");
                match &baseline {
                    None => baseline = Some(report),
                    Some(expected) => assert_eq!(
                        &report, expected,
                        "imperfect={imperfect} threads={threads} batch_size={batch_size}"
                    ),
                }
            }
        }
    }
}

/// The bounded-memory claim itself: at a small batch size the peak
/// resident reads sit far below the total sequenced reads — the archive
/// never holds the whole pool.
#[test]
fn windowed_archive_bounds_resident_reads_by_batch() {
    let data: Vec<u8> = (0..512u32).map(|i| (i % 249) as u8).collect();
    for imperfect in [false, true] {
        let config = ArchiveConfig {
            imperfect_clustering: imperfect,
            mode: ArchiveMode::Lenient,
            ..ArchiveConfig::default()
        };
        let mut rng = seeded(7);
        let (report, window) =
            archive_round_trip_stream(&data, &config, &mut rng, &ThreadPool::new(2), 4)
                .expect("windowed archive");
        assert!(
            window.peak_resident_reads < report.reads_sequenced / 2,
            "imperfect={imperfect}: peak {} reads resident is not bounded by the window \
             (total sequenced {})",
            window.peak_resident_reads,
            report.reads_sequenced
        );
    }
}
