//! Workspace-level determinism golden tests.
//!
//! The reproducibility contract of the whole evaluation harness: one root
//! seed fully determines the simulated reads and every derived table row.
//! These tests run the same protocols twice from the same seed and demand
//! *byte-identical* output, and they pin the PRNG stream itself so a silent
//! change to `dnasim_core::rng` (which would invalidate every recorded
//! experiment seed) fails loudly instead.

use dnasim::channel::{CoverageModel, NaiveModel, Simulator};
use dnasim::dataset::{write_dataset, NanoporeTwinConfig};
use dnasim::pipeline::Experiments;
use dnasim::prelude::*;
use dnasim_core::rng::{seeded, RngExt, SeedSequence};

/// Serialises a dataset to its on-disk byte representation.
fn dataset_bytes(ds: &Dataset) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_dataset(ds, &mut buffer).expect("in-memory write cannot fail");
    buffer
}

#[test]
fn same_root_seed_gives_byte_identical_simulated_reads() {
    let run = || {
        let seq = SeedSequence::new(0xD151_C0DE);
        let references: Vec<Strand> = (0..40)
            .map(|_| Strand::random(110, &mut seq.derive_rng("references")))
            .collect();
        let sim = Simulator::new(
            NaiveModel::with_total_rate(0.059),
            CoverageModel::negative_binomial(8.0, 2.0),
        );
        dataset_bytes(&sim.simulate(&references, &mut seq.derive_rng("channel")))
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "simulated reads differ between runs");
}

#[test]
fn same_config_seed_gives_byte_identical_twin_dataset() {
    let config = NanoporeTwinConfig {
        cluster_count: 30,
        seed: 424242,
        ..NanoporeTwinConfig::small()
    };
    assert_eq!(
        dataset_bytes(&config.generate()),
        dataset_bytes(&config.generate()),
        "twin generation is not a pure function of its config"
    );
}

#[test]
fn repro_table_rows_are_byte_identical_across_runs() {
    let config = NanoporeTwinConfig {
        cluster_count: 24,
        seed: 7,
        ..NanoporeTwinConfig::small()
    };
    let render = || {
        let exp = Experiments::new(&config);
        exp.table_2_1().to_string()
    };
    let first = render();
    let second = render();
    assert!(first.contains("=="), "table rendering changed shape: {first}");
    assert_eq!(first, second, "repro table rows differ between runs");
}

/// Pins the exact `seeded(42)` output stream. If this test fails, the PRNG
/// stream changed and every seed recorded in EXPERIMENTS.md or in papers'
/// repro scripts silently maps to different data — bump deliberately, never
/// accidentally.
#[test]
fn prng_stream_is_pinned() {
    let mut rng = seeded(42);
    let observed: Vec<u64> = (0..4).map(|_| rng.random::<u64>()).collect();
    assert_eq!(
        observed,
        vec![
            17283472583437600544,
            8370042955726067862,
            16573922359171953602,
            4225322880550424140,
        ],
        "seeded(42) stream changed — the workspace reproducibility contract is broken"
    );
}

/// Pins `SeedSequence` child-seed derivation (both the ordered stream and
/// the labelled, order-independent substreams).
#[test]
fn seed_sequence_derivation_is_pinned() {
    let mut seq = SeedSequence::new(42);
    assert_eq!(seq.next_seed(), 9129838320742759465);
    assert_eq!(seq.next_seed(), 2139811525164838579);
    assert_eq!(seq.derive("channel"), 7128079561534043483);
    assert_eq!(seq.derive("coverage"), 10345770961533015649);
}

/// Pins per-item `SeedSequence::fork` roots — the parallel layer gives
/// item `i` the stream `fork(i)`, so these values anchor every
/// thread-count-invariant dataset the workspace can produce.
#[test]
fn seed_sequence_fork_is_pinned() {
    let seq = SeedSequence::new(42);
    assert_eq!(seq.fork(0).root(), 17959234055794128700);
    assert_eq!(seq.fork(1).root(), 10434549699024864470);
    assert_eq!(seq.fork(2).root(), 17486514217263700714);
    assert_eq!(seq.fork(10_000).root(), 793172731781246650);
    // fork_rng(i) is exactly seeded(fork(i).root()).
    let mut a = seq.fork_rng(1);
    let mut b = seeded(seq.fork(1).root());
    let lhs: Vec<u64> = (0..4).map(|_| a.random::<u64>()).collect();
    let rhs: Vec<u64> = (0..4).map(|_| b.random::<u64>()).collect();
    assert_eq!(lhs, rhs);
}
