//! Cross-crate property-based tests: invariants that must hold for *any*
//! strand, channel draw, or codeword.

use dnasim_testkit::prelude::*;

use dnasim::codec::{ReedSolomon, RotationCodec, TwoBitCodec, XorParity};
use dnasim::metrics::{gestalt_score, hamming, levenshtein, levenshtein_within};
use dnasim::prelude::*;

/// Strategy: a random strand of the given length range.
fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- metric axioms ----------

    #[test]
    fn levenshtein_identity_and_symmetry(a in strand(0..60), b in strand(0..60)) {
        prop_assert_eq!(levenshtein(a.as_bases(), a.as_bases()), 0);
        prop_assert_eq!(
            levenshtein(a.as_bases(), b.as_bases()),
            levenshtein(b.as_bases(), a.as_bases())
        );
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in strand(0..40),
        b in strand(0..40),
        c in strand(0..40),
    ) {
        let ab = levenshtein(a.as_bases(), b.as_bases());
        let bc = levenshtein(b.as_bases(), c.as_bases());
        let ac = levenshtein(a.as_bases(), c.as_bases());
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn banded_levenshtein_agrees_with_full(a in strand(0..50), b in strand(0..50)) {
        let full = levenshtein(a.as_bases(), b.as_bases());
        let banded = levenshtein_within(a.as_bases(), b.as_bases(), 50);
        prop_assert_eq!(banded, Some(full));
    }

    #[test]
    fn gestalt_score_is_bounded_and_reflexive(a in strand(0..60), b in strand(0..60)) {
        let s = gestalt_score(a.as_bases(), b.as_bases());
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(gestalt_score(a.as_bases(), a.as_bases()), 1.0);
    }

    #[test]
    fn hamming_bounds_levenshtein(a in strand(0..60), b in strand(0..60)) {
        // Levenshtein is the minimum edit count; position-wise comparison
        // can only overcount.
        prop_assert!(levenshtein(a.as_bases(), b.as_bases()) <= hamming(&a, &b));
    }

    // ---------- edit-script soundness ----------

    #[test]
    fn edit_script_applies_and_is_minimal(a in strand(0..50), b in strand(0..50), seed in 0u64..1000) {
        let mut rng = seeded(seed);
        let script = dnasim::profile::edit_script(&a, &b, TieBreak::Random, &mut rng);
        prop_assert_eq!(script.apply(&a).unwrap(), b.clone());
        prop_assert_eq!(script.error_count(), levenshtein(a.as_bases(), b.as_bases()));
    }

    // ---------- channel invariants ----------

    #[test]
    fn channel_scripts_round_trip(reference in strand(20..120), seed in 0u64..1000) {
        // Whatever the channel emits, the profiler can explain it: the
        // recovered script reproduces the read exactly.
        let model = NaiveModel::with_total_rate(0.1);
        let mut rng = seeded(seed);
        let read = model.corrupt(&reference, &mut rng);
        let script = dnasim::profile::edit_script(
            &reference, &read, TieBreak::PreferSubstitution, &mut rng,
        );
        prop_assert_eq!(script.apply(&reference).unwrap(), read);
    }

    #[test]
    fn zero_noise_channel_is_identity(reference in strand(0..120), seed in 0u64..100) {
        let model = NaiveModel::new(0.0, 0.0, 0.0);
        let mut rng = seeded(seed);
        prop_assert_eq!(model.corrupt(&reference, &mut rng), reference);
    }

    #[test]
    fn parametric_shapes_never_panic(
        reference in strand(0..80),
        seed in 0u64..100,
        p in 0.0f64..0.5,
    ) {
        for shape in [
            SpatialDistribution::Uniform,
            SpatialDistribution::AShaped,
            SpatialDistribution::VShaped,
            SpatialDistribution::nanopore_terminal(),
        ] {
            let model = ParametricModel::new(p, shape);
            let mut rng = seeded(seed);
            let read = model.corrupt(&reference, &mut rng);
            // Insertions at most double the strand.
            prop_assert!(read.len() <= reference.len() * 2 + 2);
        }
    }

    // ---------- reconstruction invariants ----------

    #[test]
    fn clean_clusters_reconstruct_exactly(reference in strand(10..80), coverage in 1usize..8) {
        let reads = vec![reference.clone(); coverage];
        for algo in [
            Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor>,
            Box::new(Iterative::default()),
            Box::new(TwoWayIterative::default()),
            Box::new(MajorityVote),
        ] {
            prop_assert_eq!(
                algo.reconstruct(&reads, reference.len()),
                reference.clone(),
                "{} failed",
                algo.name()
            );
        }
    }

    #[test]
    fn reconstruction_length_is_exact(
        reads in dnasim_testkit::collection::vec(strand(0..60), 0..6),
        len in 1usize..60,
    ) {
        for algo in [
            Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor>,
            Box::new(Iterative::default()),
            Box::new(DividerBma),
        ] {
            prop_assert_eq!(algo.reconstruct(&reads, len).len(), len);
        }
    }

    // ---------- codec invariants ----------

    #[test]
    fn two_bit_round_trip(bytes in dnasim_testkit::collection::vec(any::<u8>(), 0..64)) {
        let strand = TwoBitCodec.encode(&bytes);
        prop_assert_eq!(TwoBitCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn rotation_round_trip_and_homopolymer_free(
        bytes in dnasim_testkit::collection::vec(any::<u8>(), 1..64),
    ) {
        let strand = RotationCodec.encode(&bytes);
        prop_assert!(strand.max_homopolymer() <= 1);
        prop_assert_eq!(RotationCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn reed_solomon_corrects_within_capacity(
        data in dnasim_testkit::collection::vec(any::<u8>(), 16),
        positions in dnasim_testkit::collection::hash_set(0usize..24, 0..4),
        flip in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(24, 16).unwrap();
        let mut cw = rs.encode(&data);
        for &p in &positions {
            cw[p] ^= flip;
        }
        prop_assert_eq!(rs.decode(&mut cw).unwrap(), &data[..]);
    }

    #[test]
    fn xor_parity_recovers_any_single_loss(
        payloads in dnasim_testkit::collection::vec(dnasim_testkit::collection::vec(any::<u8>(), 8), 1..9),
        group in 1usize..5,
        loss_seed in any::<u64>(),
    ) {
        let parity = XorParity::new(group);
        let protected = parity.protect(&payloads);
        let mut received: Vec<Option<Vec<u8>>> = protected.iter().cloned().map(Some).collect();
        let loss = (loss_seed as usize) % received.len();
        let lost = received[loss].take().unwrap();
        prop_assert_eq!(parity.recover(&mut received).unwrap(), 1);
        prop_assert_eq!(received[loss].as_ref().unwrap(), &lost);
    }
}
