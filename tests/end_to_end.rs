//! Cross-crate integration tests: the full evaluation loop the paper runs,
//! exercised through the public facade.

use dnasim::cluster::GreedyClusterer;
use dnasim::metrics::ProfileKind;
use dnasim::pipeline::{post_reconstruction_profiles, pre_reconstruction_profiles};
use dnasim::prelude::*;

fn small_twin(clusters: usize) -> Dataset {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = clusters;
    config.generate()
}

#[test]
fn profile_then_resimulate_preserves_aggregate_rate() {
    let real = small_twin(80);
    let mut rng = seeded(1);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let learned = LearnedModel::from_stats(&stats, 10);
    let real_rate = learned.aggregate_error_rate;

    // Resimulate with the learned model and re-profile the simulation.
    let model = KeoliyaModel::new(learned, SimulatorLayer::SecondOrder);
    let simulated =
        Simulator::new(model, CoverageModel::Fixed(0)).resimulate_matching(&real, &mut rng);
    let sim_stats = ErrorStats::from_dataset(&simulated, TieBreak::Random, &mut rng);
    let sim_rate = sim_stats.aggregate_error_rate();
    assert!(
        (sim_rate - real_rate).abs() / real_rate < 0.15,
        "simulated rate {sim_rate} vs real {real_rate}"
    );
}

#[test]
fn simulated_spatial_profile_tracks_real_profile() {
    let real = small_twin(80);
    let mut rng = seeded(2);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let learned = LearnedModel::from_stats(&stats, 10);
    let model = KeoliyaModel::new(learned, SimulatorLayer::SpatialSkew);
    let simulated =
        Simulator::new(model, CoverageModel::Fixed(0)).resimulate_matching(&real, &mut rng);

    let (_, real_gestalt) = pre_reconstruction_profiles(&real);
    let (_, sim_gestalt) = pre_reconstruction_profiles(&simulated);
    let real_rates = real_gestalt.rates();
    let sim_rates = sim_gestalt.rates();
    // Terminal positions must be inflated in both, interior flat in both.
    for rates in [&real_rates, &sim_rates] {
        let interior = rates[30..80].iter().sum::<f64>() / 50.0;
        assert!(rates[0] > 1.8 * interior, "head not skewed: {} vs {interior}", rates[0]);
        assert!(
            rates[109] > 1.8 * interior,
            "tail not skewed: {} vs {interior}",
            rates[109]
        );
    }
}

#[test]
fn reconstruction_profiles_have_paper_shapes() {
    let real = small_twin(120);
    let at_n5 = fixed_coverage_protocol(&real, 10, 5);

    // Iterative: Hamming errors grow toward the strand end (one-way).
    let (hamming, _) = post_reconstruction_profiles(&at_n5, &Iterative::default());
    let (head, _, tail) = hamming.thirds();
    assert!(
        tail > head,
        "iterative profile should rise toward the end: head {head}, tail {tail}"
    );

    // BMA: errors fold into the middle (two-way halves).
    let (bma_hamming, _) = post_reconstruction_profiles(&at_n5, &BmaLookahead::default());
    let (b_head, b_mid, b_tail) = bma_hamming.thirds();
    assert!(
        b_mid > 0.8 * b_head.max(b_tail),
        "bma profile should be middle-heavy: {b_head} / {b_mid} / {b_tail}"
    );
}

#[test]
fn imperfect_clustering_recovers_most_reads() {
    let real = small_twin(40);
    let references = real.references();
    let mut rng = seeded(3);
    let total = real.total_reads();
    let pool = real.into_read_pool(&mut rng);
    let clustered = GreedyClusterer::default().cluster_against_references(&pool, &references);
    assert_eq!(clustered.len(), 40);
    assert!(
        clustered.total_reads() * 10 >= total * 9,
        "recovered only {} of {total} reads",
        clustered.total_reads()
    );
}

#[test]
fn archive_round_trip_through_facade() {
    let mut rng = seeded(4);
    let payload: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
    let report = archive_round_trip(&payload, &ArchiveConfig::default(), &mut rng)
        .expect("round trip must succeed");
    assert_eq!(&report.data[..payload.len()], &payload[..]);
}

#[test]
fn fixed_coverage_protocol_prefix_property() {
    let real = small_twin(30);
    let n5 = fixed_coverage_protocol(&real, 10, 5);
    let n6 = fixed_coverage_protocol(&real, 10, 6);
    assert_eq!(n5.len(), n6.len());
    for (c5, c6) in n5.iter().zip(n6.iter()) {
        assert_eq!(c5.reads(), &c6.reads()[..c5.coverage()]);
    }
}

#[test]
fn dataset_io_round_trips_through_files() {
    let real = small_twin(20);
    let mut buffer = Vec::new();
    write_dataset(&real, &mut buffer).unwrap();
    let back = read_dataset(buffer.as_slice()).unwrap();
    assert_eq!(back, real);
}

#[test]
fn pre_reconstruction_hamming_dominates_gestalt() {
    let real = small_twin(30);
    let (hamming, gestalt) = pre_reconstruction_profiles(&real);
    assert!(hamming.total_errors() > gestalt.total_errors());
    assert_eq!(hamming.kind(), ProfileKind::Hamming);
    assert_eq!(gestalt.kind(), ProfileKind::GestaltAligned);
}

#[test]
fn profiler_learns_twin_homopolymer_boost() {
    // The twin inflates error rates inside homopolymer runs (≥3) by 1.8×;
    // the profiler must recover a boost meaningfully above 1.
    let real = small_twin(100);
    let mut rng = seeded(5);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let boost = stats.homopolymer_boost();
    assert!(
        boost > 1.15 && boost < 2.5,
        "learned homopolymer boost {boost}, twin uses 1.8"
    );
}

#[test]
fn persisted_model_simulates_identically() {
    // A LearnedModel survives the text round trip byte-for-byte in
    // simulation behaviour.
    let real = small_twin(40);
    let mut rng = seeded(6);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let model = LearnedModel::from_stats(&stats, 10);
    let restored = LearnedModel::from_text(&model.to_text()).unwrap();
    assert_eq!(restored, model);
    let a = KeoliyaModel::new(model, SimulatorLayer::SecondOrder);
    let b = KeoliyaModel::new(restored, SimulatorLayer::SecondOrder);
    let reference = Strand::random(110, &mut rng);
    assert_eq!(
        a.corrupt(&reference, &mut seeded(9)),
        b.corrupt(&reference, &mut seeded(9))
    );
}
