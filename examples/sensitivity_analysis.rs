//! Sensitivity analysis (§3.4): how the *spatial placement* of a fixed
//! error budget changes reconstruction accuracy.
//!
//! Generates datasets at the same aggregate error rate under uniform,
//! A-shaped, V-shaped and Nanopore-terminal spatial distributions, and
//! compares BMA, Iterative and Two-Way Iterative on each.
//!
//! ```text
//! cargo run --release --example sensitivity_analysis
//! ```

use dnasim::prelude::*;

fn main() {
    let mut rng = seeded(31);
    let references: Vec<Strand> = (0..250).map(|_| Strand::random(110, &mut rng)).collect();
    let shapes = [
        SpatialDistribution::Uniform,
        SpatialDistribution::AShaped,
        SpatialDistribution::VShaped,
        SpatialDistribution::nanopore_terminal(),
    ];
    let algorithms: Vec<Box<dyn TraceReconstructor>> = vec![
        Box::new(BmaLookahead::default()),
        Box::new(Iterative::default()),
        Box::new(TwoWayIterative::default()),
    ];

    println!("aggregate error rate fixed at p̄ = 0.10, coverage N = 6\n");
    println!(
        "{:<16} {:>18} {:>18} {:>18}",
        "distribution", "bma", "iterative", "iterative-twoway"
    );
    println!("{:<16} {:>18} {:>18} {:>18}", "", "str% / chr%", "str% / chr%", "str% / chr%");
    for shape in &shapes {
        let model = ParametricModel::new(0.10, shape.clone());
        let dataset =
            Simulator::new(model, CoverageModel::Fixed(6)).simulate(&references, &mut rng);
        print!("{:<16}", shape.to_string());
        for algo in &algorithms {
            let report = evaluate_reconstruction(&dataset, algo);
            print!(
                " {:>8.2} /{:>7.2}",
                report.per_strand_percent(),
                report.per_char_percent()
            );
        }
        println!();
    }
    println!(
        "\nExpected shape (the paper's findings): BMA prefers A-shaped error \
         (it folds errors\ninto the middle anyway) and suffers on V-shaped; \
         one-way Iterative is the most\nsensitive to error at the strand ends, \
         and two-way execution recovers most of that loss."
    );
}
