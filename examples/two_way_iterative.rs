//! The paper's proposed improvement (§4.3): two-way execution for the
//! Iterative algorithm.
//!
//! One-way Iterative reconstruction propagates errors linearly toward the
//! strand end and is poisoned by error bursts at the strand *start* — the
//! exact place real Nanopore data concentrates errors. Running it in both
//! directions and stitching the halves (as BMA does) removes the weak side.
//!
//! ```text
//! cargo run --release --example two_way_iterative
//! ```

use dnasim::metrics::{PositionalProfile, ProfileKind};
use dnasim::prelude::*;

fn main() {
    // Terminally-skewed noise, like real Nanopore data.
    let mut rng = seeded(17);
    let references: Vec<Strand> = (0..250).map(|_| Strand::random(110, &mut rng)).collect();
    let model = ParametricModel::new(0.10, SpatialDistribution::nanopore_terminal());
    let dataset = Simulator::new(model, CoverageModel::Fixed(5)).simulate(&references, &mut rng);

    let one_way = Iterative::default();
    let two_way = TwoWayIterative::default();

    println!("terminally-skewed channel (p̄ = 0.10, N = 5):");
    let mut profiles = Vec::new();
    for algo in [
        Box::new(one_way) as Box<dyn TraceReconstructor>,
        Box::new(two_way),
    ] {
        let report = evaluate_reconstruction(&dataset, &algo);
        println!("  {:<18} {report}", algo.name());

        // Positional residual-error profile, to see *where* each variant fails.
        let mut profile = PositionalProfile::new(ProfileKind::Hamming, 110);
        for cluster in dataset.iter() {
            let estimate = algo.reconstruct(cluster.reads(), 110);
            profile.record(cluster.reference(), &estimate);
        }
        profiles.push((algo.name(), profile));
    }
    for (name, profile) in &profiles {
        let (head, mid, tail) = profile.thirds();
        println!(
            "\n  {name} residual error rate by thirds: start {head:.4}, middle {mid:.4}, \
             end {tail:.4}"
        );
        println!("{}", profile.ascii_chart(11));
    }
    println!(
        "One-way Iterative degrades toward the strand end; the two-way variant is \
         symmetric and\nstrictly better on terminally-skewed data — the paper's §4.3 \
         recommendation, verified."
    );
}
