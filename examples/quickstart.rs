//! Quickstart: simulate a noisy DNA-storage channel, learn its parameters
//! from the data, resimulate with the learned model, and compare
//! reconstruction accuracy — the core loop of the paper in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dnasim::prelude::*;

fn main() {
    // 1. A "real" dataset: the synthetic Nanopore twin (reduced size).
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = 200;
    let real = config.generate();
    println!(
        "real dataset: {} clusters, {} reads, mean coverage {:.1}",
        real.len(),
        real.total_reads(),
        real.mean_coverage()
    );

    // 2. Learn the channel from the data (Appendix B edit scripts →
    //    conditional probabilities, long deletions, spatial skew,
    //    second-order errors).
    let mut rng = seeded(7);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let learned = LearnedModel::from_stats(&stats, 10);
    println!(
        "learned: aggregate error {:.3}%, long-del p {:.4}%, start/end spatial x{:.1}/x{:.1}",
        learned.aggregate_error_rate * 100.0,
        learned.long_deletion.probability * 100.0,
        learned.spatial_multiplier(0),
        learned.spatial_multiplier(learned.strand_len - 1),
    );

    // 3. Resimulate the dataset with the full layered model, matching each
    //    cluster's real coverage.
    let model = KeoliyaModel::new(learned, SimulatorLayer::SecondOrder);
    let simulated =
        Simulator::new(model, CoverageModel::Fixed(0)).resimulate_matching(&real, &mut rng);

    // 4. Evaluate both under the paper's fixed-coverage protocol (N = 5).
    for (label, dataset) in [("real", &real), ("simulated", &simulated)] {
        let at_n5 = fixed_coverage_protocol(dataset, 10, 5);
        for algo in [
            Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor>,
            Box::new(Iterative::default()),
        ] {
            let report = evaluate_reconstruction(&at_n5, &algo);
            println!("{label:>10} / {:<10} {report}", algo.name());
        }
    }
    println!("\nA good simulator keeps the real and simulated rows close.");
}
