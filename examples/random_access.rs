//! Random access in a shared DNA pool (§1.1.1): store several files in one
//! container and read back just one via primer-selective PCR amplification.
//!
//! ```text
//! cargo run --release --example random_access
//! ```

use dnasim::core::rng::seeded;
use dnasim::pipeline::{FilePool, PoolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded(2026);
    let mut pool = FilePool::new(PoolConfig::default());

    let files: Vec<(&str, Vec<u8>)> = vec![
        ("readme", b"DNA pools are key-value stores: the primer is the key.".to_vec()),
        ("ledger", (0u8..=255).cycle().take(400).collect()),
        ("photo", (0u8..=255).rev().cycle().take(300).collect()),
    ];
    for (name, data) in &files {
        pool.store(name, data.clone(), &mut rng)?;
        println!(
            "stored '{name}' ({} bytes) — pool now holds {} molecule species",
            data.len(),
            pool.species_count()
        );
    }

    // Without amplification, each file is a small fraction of the pool.
    for (name, _) in &files {
        println!(
            "baseline share of '{name}' in the pool: {:.1}%",
            pool.baseline_share(name)? * 100.0
        );
    }

    // Random access: amplify + sequence + reconstruct + decode one file.
    for (name, data) in &files {
        let recovered = pool.retrieve(name, &mut rng)?;
        let ok = recovered[..] == data[..];
        println!(
            "retrieve '{name}': {} ({} bytes)",
            if ok { "OK" } else { "CORRUPT" },
            recovered.len()
        );
        assert!(ok);
    }
    println!(
        "\nEvery file was recovered from the shared container without sequencing \
         the other files\nat depth — the PCR primer did the addressing."
    );
    Ok(())
}
