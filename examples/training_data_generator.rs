//! Synthetic-data generation for learned reconstruction models.
//!
//! DNASimulator has been used as a synthetic data generator (SDG) to train
//! DNAformer-style neural trace reconstructors; a higher-fidelity simulator
//! directly improves such models. This example plays that role: learn a
//! channel from "real" data, then emit an arbitrarily large labelled
//! training set (reference, noisy reads) in the cluster-file format.
//!
//! ```text
//! cargo run --release --example training_data_generator -- [out.txt]
//! ```

use std::io::BufWriter;

use dnasim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("dnasim_training_set.txt")
            .to_string_lossy()
            .into_owned()
    });

    // 1. Learn the channel from the (reduced) "real" dataset.
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = 150;
    let real = config.generate();
    let mut rng = seeded(99);
    let stats = ErrorStats::from_dataset(&real, TieBreak::Random, &mut rng);
    let learned = LearnedModel::from_stats(&stats, 10);

    // 2. Generate fresh reference strands the model has never seen, and
    //    simulate labelled clusters at a training-friendly coverage.
    let model = KeoliyaModel::new(learned, SimulatorLayer::SecondOrder);
    let references: Vec<Strand> = (0..1000).map(|_| Strand::random(110, &mut rng)).collect();
    let training = Simulator::new(model, CoverageModel::negative_binomial(10.0, 3.0))
        .simulate(&references, &mut rng);

    // 3. Write it out in the cluster-file format any consumer can parse.
    let file = std::fs::File::create(&out_path)?;
    write_dataset(&training, BufWriter::new(file))?;
    println!(
        "wrote {} labelled clusters ({} reads, mean coverage {:.1}) to {out_path}",
        training.len(),
        training.total_reads(),
        training.mean_coverage()
    );

    // 4. Sanity: the generated data should be about as hard as the real
    //    data it was learned from.
    let real_n5 = fixed_coverage_protocol(&real, 8, 5);
    let train_n5 = fixed_coverage_protocol(&training, 8, 5);
    let algo = BmaLookahead::default();
    println!(
        "difficulty check (BMA at N=5): real {:.1}% vs generated {:.1}% per-strand",
        evaluate_reconstruction(&real_n5, &algo).per_strand_percent(),
        evaluate_reconstruction(&train_n5, &algo).per_strand_percent(),
    );
    Ok(())
}
