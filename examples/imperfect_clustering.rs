//! Perfect vs. imperfect clustering (§3.1's evaluation choice).
//!
//! The paper evaluates under *pseudo-clustering* (the simulator's output is
//! taken as already grouped) to avoid contaminating reconstruction results
//! with clustering artifacts. This example quantifies that choice: shuffle
//! all reads into one pool, re-cluster them greedily, and compare
//! reconstruction accuracy against the perfectly-clustered baseline.
//!
//! ```text
//! cargo run --release --example imperfect_clustering
//! ```

use dnasim::cluster::GreedyClusterer;
use dnasim::prelude::*;

fn main() {
    // A reduced Nanopore twin as the "sequencing run".
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = 150;
    let perfect = config.generate();
    let references = perfect.references();
    println!(
        "dataset: {} clusters, {} reads, {:.1}% aggregate error",
        perfect.len(),
        perfect.total_reads(),
        5.9
    );

    // Destroy the grouping, then recover it with the greedy clusterer.
    let mut rng = seeded(8);
    let total_reads = perfect.total_reads();
    let pool = perfect.clone().into_read_pool(&mut rng);
    let clusterer = GreedyClusterer::default();
    let reclustered = clusterer.cluster_against_references(&pool, &references);
    println!(
        "re-clustering recovered {} of {} reads ({} erasures created)",
        reclustered.total_reads(),
        total_reads,
        reclustered.erasure_count().saturating_sub(perfect.erasure_count()),
    );

    // Compare reconstruction accuracy under both clusterings at N = 5.
    println!(
        "\n{:<12} {:>22} {:>22}",
        "algorithm", "perfect clustering", "greedy clustering"
    );
    for algo in [
        Box::new(BmaLookahead::default()) as Box<dyn TraceReconstructor>,
        Box::new(Iterative::default()),
        Box::new(TwoWayIterative::default()),
    ] {
        let p = evaluate_reconstruction(
            &fixed_coverage_protocol(&perfect, 10, 5),
            &algo,
        );
        let g = evaluate_reconstruction(
            &fixed_coverage_protocol(&reclustered, 10, 5),
            &algo,
        );
        println!(
            "{:<12} {:>10.2} /{:>9.2} {:>10.2} /{:>9.2}",
            algo.name(),
            p.per_strand_percent(),
            p.per_char_percent(),
            g.per_strand_percent(),
            g.per_char_percent()
        );
    }
    println!(
        "\nThe gap between the columns is the clustering algorithm's own error \
         signature —\nexactly the contamination pseudo-clustering removes from the \
         paper's evaluation."
    );
}
