//! Archival storage end to end: store a document in simulated DNA for a
//! century and read it back.
//!
//! Exercises every substrate: strand layout (primers + index + RS),
//! XOR-parity erasure protection, the composable multi-stage channel
//! (synthesis → decay → PCR → sequencing), clustering, trace
//! reconstruction, and decoding.
//!
//! ```text
//! cargo run --release --example archival_storage
//! ```

use dnasim::core::rng::seeded;
use dnasim::pipeline::{archive_round_trip, ArchiveConfig};

fn main() {
    let document = concat!(
        "DNA storage offers extreme density (up to 17 EB/gram) and ",
        "durability measured in centuries, making it a candidate medium ",
        "for archival data. This document survives a simulated century ",
        "of storage, PCR amplification bias, and Nanopore-grade ",
        "sequencing noise."
    )
    .as_bytes()
    .to_vec();

    let mut rng = seeded(2026);
    for (label, config) in [
        (
            "perfect clustering, 100 years",
            ArchiveConfig::default(),
        ),
        (
            "greedy clustering, 100 years",
            ArchiveConfig {
                imperfect_clustering: true,
                ..ArchiveConfig::default()
            },
        ),
        (
            "perfect clustering, 1000 years",
            ArchiveConfig {
                storage_years: 1000.0,
                ..ArchiveConfig::default()
            },
        ),
    ] {
        match archive_round_trip(&document, &config, &mut rng) {
            Ok(report) => {
                let ok = report.data[..document.len()] == document[..];
                println!(
                    "{label}: {} strands written, {} reads sequenced, {} parity \
                     recoveries → {}",
                    report.strands_written,
                    report.reads_sequenced,
                    report.strands_recovered_by_parity,
                    if ok { "RECOVERED" } else { "CORRUPT" }
                );
                assert!(ok, "payload corrupted");
            }
            Err(e) => println!("{label}: FAILED ({e})"),
        }
    }
    println!(
        "\nrecovered text: {}...",
        String::from_utf8_lossy(&document[..60])
    );
}
