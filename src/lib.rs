//! `dnasim` — an end-to-end simulator for the noisy channels of DNA data
//! storage.
//!
//! DNA storage writes digital data as synthesized DNA strands and reads it
//! back by sequencing; both directions are noisy, and real wet-lab
//! experiments are slow and expensive. `dnasim` lets you iterate *in
//! silico*: generate realistic noisy datasets, learn channel models from
//! real data, run trace-reconstruction algorithms, and evaluate
//! error-correction pipelines — reproducing the evaluation of
//! *Simulating Noisy Channels in DNA Storage* end to end.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`core`] — strands, clusters, datasets, edit operations;
//! * [`metrics`] — Levenshtein / Hamming / gestalt metrics, accuracy;
//! * [`profile`] — data-driven error profiling ([`profile::LearnedModel`]);
//! * [`channel`] — the simulator suite and coverage/spatial models;
//! * [`cluster`] — read clustering;
//! * [`reconstruct`] — BMA, Divider BMA, Iterative, Two-Way Iterative;
//! * [`codec`] — binary↔DNA codecs, Reed–Solomon, XOR parity, layout;
//! * [`dataset`] — the Nanopore twin and cluster-file I/O;
//! * [`pipeline`] — experiment protocols and the archival round trip;
//! * [`faults`] — deterministic fault injection and the chaos suite;
//! * [`serve`] — the multi-tenant batch RPC tier behind `dnasim serve`.
//!
//! # Quick start
//!
//! ```
//! use dnasim::channel::{CoverageModel, NaiveModel, Simulator};
//! use dnasim::core::rng::seeded;
//! use dnasim::core::Strand;
//! use dnasim::pipeline::evaluate_reconstruction;
//! use dnasim::reconstruct::BmaLookahead;
//!
//! // Simulate a noisy dataset over 20 random references...
//! let mut rng = seeded(42);
//! let references: Vec<Strand> = (0..20).map(|_| Strand::random(110, &mut rng)).collect();
//! let simulator = Simulator::new(
//!     NaiveModel::with_total_rate(0.03),
//!     CoverageModel::Fixed(8),
//! );
//! let dataset = simulator.simulate(&references, &mut rng);
//!
//! // ...and reconstruct it.
//! let report = evaluate_reconstruction(&dataset, &BmaLookahead::default());
//! assert!(report.per_char_percent() > 99.0);
//! ```

#![warn(missing_docs)]

pub use dnasim_channel as channel;
pub use dnasim_cluster as cluster;
pub use dnasim_codec as codec;
pub use dnasim_core as core;
pub use dnasim_dataset as dataset;
pub use dnasim_faults as faults;
pub use dnasim_metrics as metrics;
pub use dnasim_par as par;
pub use dnasim_pipeline as pipeline;
pub use dnasim_profile as profile;
pub use dnasim_reconstruct as reconstruct;
pub use dnasim_serve as serve;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use dnasim_channel::{
        CoverageModel, DnaSimulatorModel, ErrorModel, FullHistogramModel, KeoliyaModel,
        NaiveModel, ParametricModel, Simulator, SimulatorLayer, SpatialDistribution,
    };
    pub use dnasim_cluster::{GreedyClusterer, StreamingClusterer};
    pub use dnasim_core::rng::{seeded, SeedSequence, SimRng};
    pub use dnasim_core::{
        pump, pump_prefetch, resident_reads, Base, Batch, Cluster, ClusterSink, ClusterSource,
        Dataset, EditOp, EditScript, ErrorKind, PrefetchSource, Strand, WindowStats,
    };
    pub use dnasim_dataset::{
        fnv1a64, read_dataset, read_dataset_auto, write_dataset, write_dataset_format,
        AnyDatasetReader, AnyDatasetWriter, BinaryDatasetReader, BinaryDatasetWriter,
        DatasetReader, DatasetWriter, Format, NanoporeTwinConfig,
    };
    pub use dnasim_metrics::{gestalt_score, hamming, levenshtein, AccuracyReport};
    pub use dnasim_par::ThreadPool;
    pub use dnasim_pipeline::{
        archive_round_trip, archive_round_trip_on, archive_round_trip_stream,
        evaluate_reconstruction, evaluate_reconstruction_on, evaluate_reconstruction_stream,
        fixed_coverage_protocol, simulator_fidelity, simulator_fidelity_stream, ArchiveConfig,
        Experiments, FilePool, PoolConfig,
    };
    pub use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
    pub use dnasim_reconstruct::{
        BmaLookahead, DividerBma, Iterative, MajorityVote, MsaReconstructor,
        TraceReconstructor, TwoWayIterative, WeightedIterative,
    };
}
